"""Simulated replicated-database systems (the prototypes of §5).

Three assemblies share the client loop:

* :class:`StandaloneSystem` — one database, no middleware.  This is what
  the profiler measures.
* :class:`MultiMasterSystem` — Figure 4: load balancer, N replicas each
  executing reads and updates, and a certifier detecting system-wide
  write-write conflicts and driving update propagation (Tashkent-style).
* :class:`SingleMasterSystem` — Figure 5: the master executes all updates
  and propagates writesets to the slaves; read-only transactions go to the
  least-loaded replica, master included (Ganymed-style).

Clients follow the closed-loop model of §3.1: think (exponential), submit,
wait for the response; aborted update transactions are retried immediately
by the (simulated) application server, as the paper's Java servlets do.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import rng as rng_util
from ..core.errors import RetryLimitExceeded, SimulationError
from ..core.params import ReplicationConfig
from ..sidb.certifier import Certifier
from ..workloads.spec import WorkloadSpec
from .des import Acquire, Environment, Semaphore, Timeout
from .replica import SimReplica
from .sampling import WorkloadSampler
from .stats import MetricsCollector

#: Load-balancer routing policies.  The paper's prototypes route to the
#: least-loaded replica; "pinned" statically partitions clients over
#: replicas (the analytical model's view); "random" picks uniformly;
#: "conflict-aware" routes updates to the most caught-up replica (freshest
#: ``applied_version``, so update snapshots are as young as possible and
#: certification aborts shrink) and reads to the least-loaded one.
LEAST_LOADED = "least-loaded"
PINNED = "pinned"
RANDOM = "random"
CONFLICT_AWARE = "conflict-aware"
LB_POLICIES = (LEAST_LOADED, PINNED, RANDOM, CONFLICT_AWARE)


def select_replica(policy, candidates, client_id, is_update, rng):
    """Pick an *available* replica according to *policy*.

    The single routing implementation shared by the simulator and the
    live cluster runtime (:mod:`repro.cluster.balancer`); candidates only
    need ``available``, ``active``, ``applied_version``, and ``name``.
    """
    alive = [r for r in candidates if r.available]
    if not alive:
        # Total outage: keep routing so clients block on queues rather
        # than deadlocking the closed loop.
        alive = list(candidates)
    if policy == PINNED:
        return alive[client_id % len(alive)]
    if policy == RANDOM:
        return alive[int(rng.integers(0, len(alive)))]
    if policy == CONFLICT_AWARE and is_update:
        # Updates go to a most-caught-up replica (never a lagging one):
        # the freshest applied_version minimises snapshot staleness and
        # therefore the certification-abort window.  Versions are read
        # once: in the live cluster appliers advance them concurrently,
        # and re-reading could leave the freshest set empty.
        versions = [(r.applied_version, r) for r in alive]
        freshest = max(v for v, _ in versions)
        alive = [r for v, r in versions if v == freshest]
    return min(alive, key=lambda r: (r.active, r.name))


class _BaseSystem:
    """Shared plumbing: replicas, samplers, metric wiring, client loop."""

    def __init__(
        self,
        env: Environment,
        spec: WorkloadSpec,
        config: ReplicationConfig,
        seed: int,
        metrics: MetricsCollector,
        distribution: str = "exponential",
        lb_policy: str = LEAST_LOADED,
    ) -> None:
        if lb_policy not in LB_POLICIES:
            raise SimulationError(
                f"unknown lb_policy {lb_policy!r}; one of {LB_POLICIES}"
            )
        self.env = env
        self.spec = spec
        self.config = config
        self.metrics = metrics
        self._seed = seed
        self._distribution = distribution
        self.lb_policy = lb_policy
        self._lb_rng = rng_util.spawn(seed, "load-balancer")
        self.replicas: List[SimReplica] = []

    def _make_replica(self, name: str, path: object) -> SimReplica:
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "replica", path),
            distribution=self._distribution,
        )
        replica = SimReplica(self.env, name, sampler)
        # Admission control: the connection pool bounds how many client
        # transactions execute concurrently (config.max_concurrency).
        if self.config.max_concurrency is not None:
            replica.admission = Semaphore(self.env, self.config.max_concurrency)
        else:
            replica.admission = None
        self.metrics.watch_resource(f"{name}.cpu", replica.cpu)
        self.metrics.watch_resource(f"{name}.disk", replica.disk)
        self.replicas.append(replica)
        return replica

    def _admit(self, replica: SimReplica):
        """Wait for an execution slot at *replica* (no-op without a limit)."""
        if replica.admission is not None:
            yield Acquire(replica.admission)

    def _release(self, replica: SimReplica) -> None:
        if replica.admission is not None:
            replica.admission.release()

    def start_clients(self, count: int) -> None:
        """Launch *count* closed-loop client processes."""
        for client_id in range(count):
            sampler = WorkloadSampler(
                self.spec,
                rng_util.spawn(self._seed, "client", client_id),
                distribution=self._distribution,
            )
            self.env.start(self._client_loop(client_id, sampler))

    def start_open_arrivals(self, rate: float) -> None:
        """Launch an open-loop Poisson arrival stream of *rate* tps.

        Open arrivals do not wait for responses (no think-time feedback):
        past the capacity knee the resident population — and response time
        — grows without bound, the contrast with the closed-loop model that
        [Schroeder 2006] warns about and §3.1 adopts deliberately.
        """
        if rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {rate}")
        self.env.start(self._arrival_process(rate))

    def _arrival_process(self, rate: float):
        arrival_rng = rng_util.spawn(self._seed, "open-arrivals")
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "open-client"),
            distribution=self._distribution,
        )
        sequence = 0
        while True:
            yield Timeout(float(arrival_rng.exponential(1.0 / rate)))
            sequence += 1
            self.env.start(self._one_shot(sequence, sampler))

    def _one_shot(self, sequence: int, sampler: WorkloadSampler):
        is_update = sampler.next_is_update()
        started = self.env.now
        aborts = yield from self.execute(sampler, is_update, sequence)
        self.metrics.record_commit(
            is_update, self.env.now - started, aborts, now=self.env.now
        )

    def _client_loop(self, client_id: int, sampler: WorkloadSampler):
        while True:
            yield Timeout(sampler.think_time())
            is_update = sampler.next_is_update()
            started = self.env.now
            aborts = yield from self.execute(sampler, is_update, client_id)
            self.metrics.record_commit(
                is_update, self.env.now - started, aborts, now=self.env.now
            )

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int):
        """Run one transaction to commit; returns the abort (retry) count."""
        raise NotImplementedError

    def route(
        self,
        candidates: List[SimReplica],
        client_id: int,
        is_update: bool = False,
    ) -> SimReplica:
        """Pick an *available* replica according to the LB policy."""
        return select_replica(
            self.lb_policy, candidates, client_id, is_update, self._lb_rng
        )


class StandaloneSystem(_BaseSystem):
    """A single snapshot-isolated database with directly attached clients."""

    def __init__(self, env, spec, config, seed, metrics,
                 distribution="exponential", lb_policy=LEAST_LOADED):
        super().__init__(env, spec, config, seed, metrics, distribution,
                         lb_policy)
        self.database = self._make_replica("standalone", 0)
        self.certifier = Certifier()
        self._active_snapshots: Dict[int, int] = {}
        self._snapshot_token = 0

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int = 0):
        replica = self.database
        replica.active += 1
        aborts = 0
        yield from self._admit(replica)
        try:
            if not is_update:
                yield from replica.serve_read()
                return aborts
            for _ in range(self.config.max_retries):
                # The snapshot is taken at begin; the conflict window is the
                # full execution time on the standalone database (§2).
                snapshot = self.certifier.latest_version
                token = self._register_snapshot(snapshot)
                try:
                    yield from replica.serve_update_attempt()
                    writeset = sampler.sample_writeset(snapshot)
                    self.metrics.record_certification()
                    outcome = self.certifier.certify(writeset)
                finally:
                    self._release_snapshot(token)
                if outcome.committed:
                    return aborts
                aborts += 1
            raise RetryLimitExceeded(
                "standalone", "update", self.config.max_retries
            )
        finally:
            self._release(replica)
            replica.active -= 1

    def _register_snapshot(self, snapshot: int) -> int:
        self._snapshot_token += 1
        self._active_snapshots[self._snapshot_token] = snapshot
        return self._snapshot_token

    def _release_snapshot(self, token: int) -> None:
        self._active_snapshots.pop(token, None)
        floor = min(
            self._active_snapshots.values(),
            default=self.certifier.latest_version,
        )
        self.certifier.observe_snapshot(max(0, floor))


class MultiMasterSystem(_BaseSystem):
    """Figure 4: N symmetric replicas behind a load balancer + certifier."""

    def __init__(self, env, spec, config, seed, metrics,
                 distribution="exponential", lb_policy=LEAST_LOADED):
        super().__init__(env, spec, config, seed, metrics, distribution,
                         lb_policy)
        for index in range(config.replicas):
            self._make_replica(f"replica{index}", index)
        self.certifier = Certifier()
        self._active_snapshots: Dict[int, int] = {}
        self._snapshot_token = 0

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int = 0):
        yield Timeout(self.config.load_balancer_delay)
        replica = self.route(self.replicas, client_id, is_update)
        replica.active += 1
        aborts = 0
        yield from self._admit(replica)
        try:
            if not is_update:
                # Read-only transactions execute entirely locally and always
                # commit (§2: GSI read-only transactions never abort).
                yield from replica.serve_read()
                return aborts
            for _ in range(self.config.max_retries):
                snapshot = replica.applied_version
                self.metrics.record_snapshot_age(
                    self.certifier.latest_version - snapshot
                )
                token = self._register_snapshot(snapshot)
                try:
                    yield from replica.serve_update_attempt()
                    writeset = sampler.sample_writeset(snapshot)
                    self.metrics.record_certification()
                    # The certifier orders and checks the writeset on
                    # arrival; the response (and update propagation) reach
                    # the replicas one certification delay later (§6.3.2).
                    outcome = self.certifier.certify(writeset)
                    yield Timeout(self.config.certifier_delay)
                finally:
                    self._release_snapshot(token)
                if outcome.committed:
                    self._propagate(outcome.commit_version, origin=replica)
                    return aborts
                aborts += 1
            raise RetryLimitExceeded(
                "multi-master", "update", self.config.max_retries
            )
        finally:
            self._release(replica)
            replica.active -= 1

    def _propagate(self, commit_version: int, origin: SimReplica) -> None:
        for replica in self.replicas:
            replica.enqueue_writeset(commit_version, charged=replica is not origin)

    def _register_snapshot(self, snapshot: int) -> int:
        self._snapshot_token += 1
        self._active_snapshots[self._snapshot_token] = snapshot
        return self._snapshot_token

    def _release_snapshot(self, token: int) -> None:
        self._active_snapshots.pop(token, None)
        # Future transactions take their snapshot from a replica's applied
        # version, which can lag the certifier; pruning must keep history
        # back to the most-lagging replica as well as all active snapshots.
        lagging = min(replica.applied_version for replica in self.replicas)
        floor = min(
            min(self._active_snapshots.values(), default=lagging),
            lagging,
        )
        self.certifier.observe_snapshot(max(0, floor))


class SingleMasterSystem(_BaseSystem):
    """Figure 5: one master for updates, N-1 slaves for reads."""

    def __init__(self, env, spec, config, seed, metrics,
                 distribution="exponential", lb_policy=LEAST_LOADED):
        super().__init__(env, spec, config, seed, metrics, distribution,
                         lb_policy)
        self.master = self._make_replica("master", "master")
        self.slaves = [
            self._make_replica(f"slave{index}", index)
            for index in range(config.replicas - 1)
        ]
        self.certifier = Certifier()
        self._active_snapshots: Dict[int, int] = {}
        self._snapshot_token = 0

    def execute(self, sampler: WorkloadSampler, is_update: bool, client_id: int = 0):
        yield Timeout(self.config.load_balancer_delay)
        if not is_update:
            replica = self.route(self.replicas, client_id)
            replica.active += 1
            yield from self._admit(replica)
            try:
                yield from replica.serve_read()
                return 0
            finally:
                self._release(replica)
                replica.active -= 1

        self.master.active += 1
        aborts = 0
        yield from self._admit(self.master)
        try:
            for _ in range(self.config.max_retries):
                # The master runs plain SI: the snapshot is its latest
                # committed version, and the conflict window is the
                # execution time on the master (§2).
                snapshot = self.certifier.latest_version
                token = self._register_snapshot(snapshot)
                try:
                    yield from self.master.serve_update_attempt()
                    writeset = sampler.sample_writeset(snapshot)
                    self.metrics.record_certification()
                    outcome = self.certifier.certify(writeset)
                finally:
                    self._release_snapshot(token)
                if outcome.committed:
                    self.master.enqueue_writeset(
                        outcome.commit_version, charged=False
                    )
                    for slave in self.slaves:
                        slave.enqueue_writeset(outcome.commit_version, charged=True)
                    return aborts
                aborts += 1
            raise RetryLimitExceeded(
                "single-master", "update", self.config.max_retries
            )
        finally:
            self._release(self.master)
            self.master.active -= 1

    def _register_snapshot(self, snapshot: int) -> int:
        self._snapshot_token += 1
        self._active_snapshots[self._snapshot_token] = snapshot
        return self._snapshot_token

    def _release_snapshot(self, token: int) -> None:
        self._active_snapshots.pop(token, None)
        floor = min(
            self._active_snapshots.values(),
            default=self.certifier.latest_version,
        )
        self.certifier.observe_snapshot(max(0, floor))
