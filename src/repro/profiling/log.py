"""Transaction-log capture and writeset extraction (§4.1.1).

On a real deployment the workload is captured from the database log (full
SQL statements, session id, start timestamp — e.g. PostgreSQL's
``log_statement``/``log_line_prefix``) and writesets are extracted by
triggers on all tables.  Here the "standalone database" is simulated, so
:func:`capture_log` records the same information from a simulated client
population, and :func:`extract_writesets` replays the update transactions
against a real :class:`~repro.sidb.engine.SIDatabase` whose commit path
plays the role of the triggers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core import rng as rng_util
from ..core.errors import ConfigurationError, ProfilingError, TransactionAborted
from ..core.params import WorkloadMix
from ..sidb.engine import SIDatabase
from ..sidb.writeset import Writeset
from ..workloads.spec import WorkloadSpec

#: Transaction kinds recorded in the log.
READ_ONLY = "read-only"
UPDATE = "update"

#: Reads a transaction performs per written row in the synthetic operation
#: stream (update transactions read the rows they modify, plus browsing).
_READS_PER_WRITE = 2


@dataclass(frozen=True)
class LogRecord:
    """One captured transaction: what the database log would show."""

    txn_id: int
    kind: str
    session_id: int
    start_time: float
    #: Operation stream: ("read", key) and ("write", key, value) tuples —
    #: the semantic content of the logged SQL statements.
    operations: Tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in (READ_ONLY, UPDATE):
            raise ConfigurationError(f"unknown transaction kind {self.kind!r}")
        if self.start_time < 0:
            raise ConfigurationError("start_time must be non-negative")


@dataclass
class TransactionLog:
    """A captured standalone workload trace."""

    workload: str
    records: List[LogRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def read_only_count(self) -> int:
        """Number of read-only transactions in the log."""
        return sum(1 for r in self.records if r.kind == READ_ONLY)

    @property
    def update_count(self) -> int:
        """Number of update transactions in the log."""
        return sum(1 for r in self.records if r.kind == UPDATE)

    def measured_mix(self) -> WorkloadMix:
        """Pr/Pw estimated by counting log records (§4.1.1)."""
        total = len(self.records)
        if total == 0:
            raise ProfilingError("cannot estimate a mix from an empty log")
        read_fraction = self.read_only_count / total
        return WorkloadMix(
            read_fraction=read_fraction, write_fraction=1.0 - read_fraction
        )

    def updates(self) -> List[LogRecord]:
        """The update transactions, in capture order."""
        return [r for r in self.records if r.kind == UPDATE]

    def reads(self) -> List[LogRecord]:
        """The read-only transactions, in capture order."""
        return [r for r in self.records if r.kind == READ_ONLY]


def capture_log(
    spec: WorkloadSpec,
    transactions: int,
    seed: int = rng_util.DEFAULT_SEED,
    sessions: Optional[int] = None,
) -> TransactionLog:
    """Capture a workload trace of *transactions* transactions.

    Sessions model the concurrent client connections; timestamps advance
    with exponential think times per session, interleaved in time order as
    a database log would be.
    """
    if transactions < 1:
        raise ConfigurationError("need at least one transaction")
    sessions = sessions or spec.clients_per_replica
    if sessions < 1:
        raise ConfigurationError("need at least one session")

    rng = rng_util.spawn(seed, "log-capture", spec.name)
    clocks = [0.0] * sessions
    records: List[LogRecord] = []
    for txn_id in range(1, transactions + 1):
        session = int(rng.integers(0, sessions))
        clocks[session] += rng_util.exponential(rng, spec.think_time)
        start = clocks[session]
        is_update = (
            spec.mix.write_fraction > 0.0 and rng.random() < spec.mix.write_fraction
        )
        if is_update:
            operations = _update_operations(spec, rng, txn_id)
            kind = UPDATE
        else:
            operations = _read_operations(spec, rng)
            kind = READ_ONLY
        records.append(
            LogRecord(
                txn_id=txn_id,
                kind=kind,
                session_id=session,
                start_time=start,
                operations=tuple(operations),
            )
        )
    records.sort(key=lambda r: (r.start_time, r.txn_id))
    return TransactionLog(workload=spec.name, records=records)


def _update_operations(spec: WorkloadSpec, rng, txn_id: int) -> List[Tuple]:
    conflict = spec.conflict
    if conflict is None:
        raise ConfigurationError(f"{spec.name} has no conflict profile")
    rows = rng_util.sample_rows(
        rng, conflict.db_update_size, conflict.updates_per_transaction
    )
    operations: List[Tuple] = []
    for row in sorted(rows):
        key = ("updatable", row)
        for _ in range(_READS_PER_WRITE):
            operations.append(("read", key))
        operations.append(("write", key, txn_id))
    return operations


def _read_operations(spec: WorkloadSpec, rng) -> List[Tuple]:
    # Read-only transactions browse a few rows; the exact keys are
    # irrelevant to conflicts (SI reads never conflict) but exercising the
    # snapshot-read path keeps the replay honest.
    count = 1 + int(rng.integers(0, 4))
    size = spec.conflict.db_update_size if spec.conflict else 10_000
    return [
        ("read", ("updatable", int(rng.integers(0, size)))) for _ in range(count)
    ]


def extract_writesets(
    log: TransactionLog, database: Optional[SIDatabase] = None
) -> List[Writeset]:
    """Replay the log's update transactions and capture their writesets.

    This is the trigger-based extraction step of §4.1.1: every update
    transaction is executed against a snapshot-isolated database and its
    writeset is recorded at commit.  Aborted replays (possible if the log
    interleaving conflicts) are skipped, as the paper's trigger capture
    only sees committed writesets.
    """
    database = database or SIDatabase()
    writesets: List[Writeset] = []
    for record in log.updates():
        try:
            writeset = database.run(record.operations)
        except TransactionAborted:
            continue
        if writeset is not None:
            writesets.append(writeset)
    return writesets
