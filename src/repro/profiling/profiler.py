"""Standalone profiling: measure the model inputs on one database (§4).

The pipeline mirrors the paper exactly:

1. capture the workload log; count record kinds to estimate ``Pr``/``Pw``;
2. play the read-only transactions alone and derive ``rc`` from the
   Utilization Law (demand = busy time / completions);
3. play the update transactions alone to derive ``wc``;
4. play the extracted writesets alone to derive ``ws``;
5. replay the full mix to measure ``L(1)`` (mean update response time) and
   the standalone abort rate ``A1``.

The output :class:`~repro.core.params.StandaloneProfile` is everything the
analytical models need — no replicated measurement is ever taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core import rng as rng_util
from ..core.errors import ProfilingError
from ..core.params import (
    ResourceDemand,
    ServiceDemands,
    StandaloneProfile,
    WorkloadMix,
)
from ..models.aborts import standalone_abort_rate
from ..queueing.operational import utilization_law_demand
from ..simulator.des import Environment, Timeout
from ..simulator.replica import SimReplica
from ..simulator.runner import STANDALONE, simulate
from ..simulator.sampling import WorkloadSampler
from ..simulator.stats import MetricsCollector
from ..workloads.spec import WorkloadSpec

#: Transaction classes the replay step can play in isolation.
_CLASS_SERVERS: Dict[str, Callable] = {
    "read": lambda replica: replica.serve_read(),
    "write": lambda replica: replica.serve_update_attempt(),
    "writeset": lambda replica: replica.serve_writeset_inline(),
}


#: Minimum observed aborts for the direct A1 estimate to be trusted.
#: Below this, the estimator falls back to the §3.3.1 conflict formula
#: evaluated at the measured operating point (simulated windows are far
#: shorter than the paper's 15-minute runs, so a <0.1% rate often yields
#: zero or one observed aborts — a direct ratio would be 0 or wildly high).
MIN_OBSERVED_ABORTS = 10


def _estimate_abort_rate(spec: WorkloadSpec, mixed) -> float:
    """Estimate A1 from a mixed standalone run (§4.1.1).

    Uses the whole-run certifier counters when they contain enough abort
    events; otherwise derives A1 analytically from the measured update
    response time and update rate using the workload's conflict footprint.
    """
    if mixed.total_certification_aborts >= MIN_OBSERVED_ABORTS:
        return mixed.total_certification_aborts / mixed.total_certifications
    if spec.conflict is None:
        return 0.0
    return standalone_abort_rate(
        spec.conflict,
        update_response_time=mixed.mean_update_response,
        update_rate=mixed.update_throughput,
    )


@dataclass(frozen=True)
class ProfilingReport:
    """The full §4 measurement record for one workload."""

    workload: str
    profile: StandaloneProfile
    #: Transactions observed per measurement stage.
    read_transactions: int
    update_transactions: int
    writeset_applications: int
    mixed_transactions: int
    #: The mix counted from the captured log.
    measured_mix: WorkloadMix
    #: Standalone throughput observed during the mixed run (diagnostics).
    standalone_throughput: float
    #: Standalone mean response time during the mixed run (diagnostics).
    standalone_response_time: float


def measure_class_demand(
    spec: WorkloadSpec,
    klass: str,
    seed: int = rng_util.DEFAULT_SEED,
    duration: float = 120.0,
    warmup: float = 5.0,
    clients: Optional[int] = None,
) -> ResourceDemand:
    """Measure the CPU/disk demand of one transaction class in isolation.

    Runs a replay population against a single simulated database and applies
    the Utilization Law per resource.  Classes: ``read``, ``write``,
    ``writeset``.
    """
    if klass not in _CLASS_SERVERS:
        raise ProfilingError(
            f"unknown class {klass!r}; expected one of {sorted(_CLASS_SERVERS)}"
        )
    clients = clients or spec.clients_per_replica
    env = Environment()
    metrics = MetricsCollector()
    sampler = WorkloadSampler(spec, rng_util.spawn(seed, "profile", klass, "svc"))
    replica = SimReplica(env, "profiled", sampler)
    metrics.watch_resource("profiled.cpu", replica.cpu)
    metrics.watch_resource("profiled.disk", replica.disk)

    completions = [0]

    def replay_client(client_id: int):
        client_rng = rng_util.spawn(seed, "profile", klass, client_id)
        while True:
            yield Timeout(float(client_rng.exponential(spec.think_time)))
            yield from _CLASS_SERVERS[klass](replica)
            if metrics.measuring:
                completions[0] += 1

    for client_id in range(clients):
        env.start(replay_client(client_id))
    env.schedule(warmup, metrics.begin_window, warmup)
    env.run_until(warmup + duration)
    metrics.end_window(env.now)

    if completions[0] == 0:
        raise ProfilingError(
            f"replay of class {klass!r} completed no transactions; "
            "increase the duration"
        )
    busy = metrics.utilizations()
    window = metrics.window
    return ResourceDemand(
        cpu=utilization_law_demand(busy["profiled.cpu"] * window, completions[0]),
        disk=utilization_law_demand(busy["profiled.disk"] * window, completions[0]),
    )


def measure_service_demands(
    spec: WorkloadSpec,
    seed: int = rng_util.DEFAULT_SEED,
    duration: float = 120.0,
    warmup: float = 5.0,
) -> ServiceDemands:
    """Measure rc, wc and ws for *spec* (§4.1.1, steps 2-4)."""
    read = measure_class_demand(spec, "read", seed=seed, duration=duration,
                                warmup=warmup)
    if not spec.has_updates:
        return ServiceDemands(read=read)
    write = measure_class_demand(spec, "write", seed=seed, duration=duration,
                                 warmup=warmup)
    writeset = measure_class_demand(spec, "writeset", seed=seed,
                                    duration=duration, warmup=warmup)
    return ServiceDemands(read=read, write=write, writeset=writeset)


def profile_standalone(
    spec: WorkloadSpec,
    seed: int = rng_util.DEFAULT_SEED,
    replay_duration: float = 120.0,
    mixed_duration: float = 120.0,
    warmup: float = 10.0,
    log_transactions: int = 2000,
) -> ProfilingReport:
    """Run the full §4 pipeline and return the measured profile."""
    from .log import capture_log  # deferred to keep import graph flat

    log = capture_log(spec, log_transactions, seed=seed)
    measured_mix = log.measured_mix()

    demands = measure_service_demands(
        spec, seed=seed, duration=replay_duration, warmup=5.0
    )

    mixed_seed = int(rng_util.spawn(seed, "profile", "mixed").integers(0, 2**31))
    mixed = simulate(
        spec,
        spec.replication_config(1, load_balancer_delay=0.0),
        design=STANDALONE,
        seed=mixed_seed,
        warmup=warmup,
        duration=mixed_duration,
    )
    if spec.has_updates:
        update_response = mixed.mean_update_response
        abort_rate = _estimate_abort_rate(spec, mixed)
        update_rate = mixed.update_throughput
    else:
        update_response = 0.0
        abort_rate = 0.0
        update_rate = 0.0
    throughput = mixed.throughput
    response = mixed.response_time
    mixed_count = mixed.committed_transactions

    profile = StandaloneProfile(
        mix=measured_mix,
        demands=demands,
        abort_rate=abort_rate,
        update_response_time=update_response,
        update_rate=update_rate,
    )
    return ProfilingReport(
        workload=spec.name,
        profile=profile,
        read_transactions=log.read_only_count,
        update_transactions=log.update_count,
        writeset_applications=log.update_count,
        mixed_transactions=mixed_count,
        measured_mix=measured_mix,
        standalone_throughput=throughput,
        standalone_response_time=response,
    )
