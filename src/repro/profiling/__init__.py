"""Standalone-database profiling: the §4 parameter-estimation pipeline."""

from .log import (
    READ_ONLY,
    UPDATE,
    LogRecord,
    TransactionLog,
    capture_log,
    extract_writesets,
)
from .profiler import (
    ProfilingReport,
    measure_class_demand,
    measure_service_demands,
    profile_standalone,
)

__all__ = [
    "LogRecord",
    "ProfilingReport",
    "READ_ONLY",
    "TransactionLog",
    "UPDATE",
    "capture_log",
    "extract_writesets",
    "measure_class_demand",
    "measure_service_demands",
    "profile_standalone",
]
