"""Partitioned data placement: which replicas host which partitions.

Full replication — the paper's assumption — means every replica installs
every writeset, so the per-replica update-propagation load grows with the
whole system's update throughput and caps scale-out (§3.3.2: the
``(N-1) * Pw * ws`` demand term).  A :class:`PartitionMap` relaxes that:
the updatable data is split into ``P`` partitions and each partition is
placed on a *subset* of the replicas.  Writesets then propagate only to
the replicas hosting the partitions they touch, and transactions are
routed to a replica hosting every partition they access.

The map is a frozen, declarative description — it rides inside engine
sweep points and content-addressed cache keys exactly like traces,
controller policies, and operations plans do — and one map is threaded
through all three pillars: the analytical model scales the writeset
fan-in by :meth:`PartitionMap.expected_update_fanout`, the simulator and
the live cluster scope propagation and routing through
:meth:`PartitionMap.hosted_by` / :meth:`PartitionMap.common_hosts`.

Replica indices follow the capacity-vector convention: they name the
*initial* fleet in creation order, and for single-master deployments
index 0 is the master.  The master executes every update, so it hosts
every partition implicitly — a single-master map only constrains which
slaves replicate which partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError

#: Design names, duplicated here (not imported) to keep this module a
#: leaf: everything — models, simulator, cluster — imports placement.
MULTI_MASTER = "multi-master"
SINGLE_MASTER = "single-master"


@dataclass(frozen=True)
class PartitionMap:
    """Placement of ``partitions`` data partitions onto ``replicas``.

    ``placement[p]`` is the sorted tuple of replica indices hosting
    partition ``p``.  Every partition must live somewhere; every replica
    must host at least one partition (single-master: the master hosts
    everything implicitly, so index 0 may be absent from the placement).
    """

    partitions: int
    replicas: int
    #: placement[p] = sorted tuple of replica indices hosting partition p.
    placement: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ConfigurationError("need at least one partition")
        if self.replicas < 1:
            raise ConfigurationError("need at least one replica")
        object.__setattr__(
            self,
            "placement",
            tuple(tuple(sorted(hosts)) for hosts in self.placement),
        )
        if len(self.placement) != self.partitions:
            raise ConfigurationError(
                f"placement names {len(self.placement)} partitions but the "
                f"map declares {self.partitions}"
            )
        for p, hosts in enumerate(self.placement):
            if not hosts:
                raise ConfigurationError(f"partition {p} is hosted nowhere")
            if len(set(hosts)) != len(hosts):
                raise ConfigurationError(
                    f"partition {p} lists a replica twice: {hosts}"
                )
            for index in hosts:
                if not 0 <= index < self.replicas:
                    raise ConfigurationError(
                        f"partition {p} names replica {index}, outside the "
                        f"{self.replicas}-replica fleet"
                    )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def full(cls, partitions: int, replicas: int) -> "PartitionMap":
        """Full replication: every replica hosts every partition."""
        everyone = tuple(range(replicas))
        return cls(partitions, replicas, tuple(everyone for _ in range(partitions)))

    @classmethod
    def ring(cls, partitions: int, replicas: int,
             replication_factor: int) -> "PartitionMap":
        """Chained placement: partition ``p`` lives on replicas
        ``p % N, (p+1) % N, ..., (p+rf-1) % N``.

        With ``replication_factor >= 2`` any two *adjacent* partitions
        share a host, so cross-partition transactions always have a
        co-located replica to execute on.
        """
        if not 1 <= replication_factor <= replicas:
            raise ConfigurationError(
                f"replication factor must be in [1, {replicas}], got "
                f"{replication_factor}"
            )
        placement = tuple(
            tuple(sorted({(p + i) % replicas
                          for i in range(replication_factor)}))
            for p in range(partitions)
        )
        return cls(partitions, replicas, placement)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def hosts(self, partition: int) -> Tuple[int, ...]:
        """Replica indices hosting *partition*."""
        if not 0 <= partition < self.partitions:
            raise ConfigurationError(
                f"partition {partition} outside [0, {self.partitions})"
            )
        return self.placement[partition]

    def hosted_by(self, replica_index: int) -> FrozenSet[int]:
        """Partitions hosted at replica *replica_index*."""
        if not 0 <= replica_index < self.replicas:
            raise ConfigurationError(
                f"replica {replica_index} outside [0, {self.replicas})"
            )
        return frozenset(
            p for p, hosts in enumerate(self.placement)
            if replica_index in hosts
        )

    def common_hosts(self, partitions: Sequence[int]) -> Tuple[int, ...]:
        """Replica indices hosting *every* partition in *partitions*."""
        parts = list(partitions)
        if not parts:
            return tuple(range(self.replicas))
        common = set(self.hosts(parts[0]))
        for p in parts[1:]:
            common &= set(self.hosts(p))
        return tuple(sorted(common))

    def colocated_partners(self, partition: int) -> Tuple[int, ...]:
        """Partitions sharing at least one host with *partition*.

        Cross-partition transactions sample their second partition from
        this set, so any map yields workloads that a single replica can
        execute (no distributed commit is modelled).
        """
        hosts = set(self.hosts(partition))
        return tuple(
            q for q in range(self.partitions)
            if q != partition and hosts & set(self.placement[q])
        )

    @property
    def is_full(self) -> bool:
        """True when every replica hosts every partition."""
        everyone = set(range(self.replicas))
        return all(set(hosts) == everyone for hosts in self.placement)

    @property
    def replication_factor(self) -> float:
        """Mean number of replicas hosting each partition."""
        return sum(len(hosts) for hosts in self.placement) / self.partitions

    # ------------------------------------------------------------------
    # Model inputs
    # ------------------------------------------------------------------

    def expected_update_fanout(
        self,
        cross_partition_fraction: float = 0.0,
        weights: Optional[Sequence[float]] = None,
    ) -> float:
        """Expected number of replicas hosting one update's writeset.

        Matches the workload sampler's generative model: the primary
        partition is drawn by *weights* (uniform when ``None``); with
        probability *cross_partition_fraction* a second, co-located
        partition joins the writeset and the hosting set is the union of
        both partitions' hosts.  This is the ``h`` the analytical model
        uses in place of ``N`` — each committed update charges writeset
        application at ``h - 1`` remote replicas instead of ``N - 1``.
        """
        if not 0.0 <= cross_partition_fraction <= 1.0:
            raise ConfigurationError(
                "cross-partition fraction must be in [0, 1]"
            )
        probabilities = _normalized_weights(weights, self.partitions)
        expected = 0.0
        for p, probability in enumerate(probabilities):
            hosts_p = set(self.hosts(p))
            partners = self.colocated_partners(p)
            single = float(len(hosts_p))
            if cross_partition_fraction > 0.0 and partners:
                union = sum(
                    len(hosts_p | set(self.placement[q])) for q in partners
                ) / len(partners)
                expected += probability * (
                    (1.0 - cross_partition_fraction) * single
                    + cross_partition_fraction * union
                )
            else:
                expected += probability * single
        return expected

    def to_text(self) -> str:
        """Render the placement, one partition per line."""
        lines = [
            f"partition map: {self.partitions} partitions over "
            f"{self.replicas} replicas "
            f"(mean replication factor {self.replication_factor:g})"
        ]
        for p, hosts in enumerate(self.placement):
            listed = ", ".join(f"r{i}" for i in hosts)
            lines.append(f"  partition {p}: [{listed}]")
        return "\n".join(lines)


def _normalized_weights(
    weights: Optional[Sequence[float]], partitions: int
) -> Tuple[float, ...]:
    """Normalise partition popularity weights (uniform when ``None``)."""
    if weights is None:
        return tuple(1.0 / partitions for _ in range(partitions))
    values = tuple(float(w) for w in weights)
    if len(values) != partitions:
        raise ConfigurationError(
            f"weights name {len(values)} partitions but the map has "
            f"{partitions}"
        )
    if any(w <= 0.0 for w in values):
        raise ConfigurationError("every partition weight must be positive")
    total = sum(values)
    return tuple(w / total for w in values)


def check_faults_against_map(
    faults, partition_map: Optional[PartitionMap]
) -> None:
    """Reject crash faults on a partially replicated fleet.

    A crash permanently destroys one copy of every partition the replica
    hosts, and the self-healing replacement path cannot run (elastic
    membership is rejected under partial maps).  Worse, once *every*
    host of a partition has crashed, the routing fallback would execute
    that partition's transactions on non-hosts, whose replicas install
    only version markers — committed data stored nowhere while the
    convergence check still passes.  Like elastic membership, the
    combination is rejected loudly until partition re-placement exists.
    Drain faults remain allowed: their writesets defer and replay on
    recovery, so no copy is ever lost.
    """
    if partition_map is None or partition_map.is_full:
        return
    for fault in faults:
        if getattr(fault, "kind", None) == "crash":
            raise ConfigurationError(
                "crash faults are not supported under a partial "
                "partition map: a crashed host permanently loses its "
                "partitions and cannot be replaced (drain faults are "
                "fine — their backlog replays on recovery)"
            )


def resolve_partition_map(
    spec,
    config,
    partition_map: Optional[PartitionMap],
    design: str = MULTI_MASTER,
) -> Optional[PartitionMap]:
    """Validate *partition_map* against a workload and deployment.

    The single resolution step shared by the simulator and the live
    cluster runtime:

    * an unpartitioned workload (``spec.partitions == 1``) takes no map
      and returns ``None`` — the classic full-replication paths run
      untouched;
    * a partitioned workload with no explicit map defaults to
      :meth:`PartitionMap.full` (full replication of partitioned data —
      the A/B baseline partial placement is compared against);
    * an explicit map must match the workload's partition count and the
      deployment's replica count, and every non-master replica must host
      at least one partition (an empty replica could serve nothing).
    """
    if spec.partitions == 1:
        if partition_map is not None:
            raise ConfigurationError(
                f"workload {spec.name} is unpartitioned but a partition "
                f"map was supplied"
            )
        return None
    if partition_map is None:
        return PartitionMap.full(spec.partitions, config.replicas)
    if partition_map.partitions != spec.partitions:
        raise ConfigurationError(
            f"map has {partition_map.partitions} partitions but workload "
            f"{spec.name} declares {spec.partitions}"
        )
    if partition_map.replicas != config.replicas:
        raise ConfigurationError(
            f"map places over {partition_map.replicas} replicas but the "
            f"deployment has {config.replicas}"
        )
    first_constrained = 1 if design == SINGLE_MASTER else 0
    for index in range(first_constrained, partition_map.replicas):
        if not partition_map.hosted_by(index):
            raise ConfigurationError(
                f"replica {index} hosts no partition; every "
                f"{'slave' if design == SINGLE_MASTER else 'replica'} "
                f"must host at least one"
            )
    return partition_map
