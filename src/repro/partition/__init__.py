"""Partial replication: partitioned placement across all three pillars.

The paper's model and both execution pillars assume full replication —
every replica installs every writeset.  This package opens the sharding
axis: a declarative :class:`~repro.partition.placement.PartitionMap`
places partitions on replica subsets, certification is scoped per
partition set, writesets propagate only to hosting replicas, and the
load balancer routes each transaction to a replica hosting everything it
touches.  :mod:`repro.partition.scenarios` registers the
``partial-replication-sweep`` and ``placement-ablation`` scenario
families (plus their ``-live`` validation cells).
"""

from .placement import (
    PartitionMap,
    resolve_partition_map,
)

__all__ = [
    "PartitionMap",
    "resolve_partition_map",
]
