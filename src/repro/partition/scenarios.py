"""Registered partial-replication scenarios.

Two families, each with a deterministic simulator cell set and a
live-cluster validation cell set:

* ``partial-replication-sweep`` — full vs partial replication across an
  update-fraction sweep on one fleet: the A/B that quantifies how much
  of the paper's update-propagation ceiling placement buys back.  Sim
  cells pair with partition-aware model predictions so the bench can
  hold the model-vs-simulator deviation inside the crossval envelope.
* ``placement-ablation`` — weight-balanced placement
  (:func:`~repro.models.planning.plan_placement`) vs a weight-oblivious
  ring on a skewed partition popularity: the planner's win condition.
* ``certifier-sharding`` — the global sequencer vs per-partition
  certifier shards when certification itself has a positive service
  time: the sharded write path's win condition (high update fraction,
  many partitions).  Model + simulator cells, plus a live validation
  pair on real threads.

All cells are ordinary engine sweep points: simulator cells are cached
and fan out over ``--jobs``; live cells re-execute.  The CLI front end
is ``repro partition``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.params import ConflictProfile, WorkloadMix
from ..engine import Scenario, register_scenario
from ..engine.scenario import (
    cluster_point,
    model_point,
    profile_task,
    sim_point,
)
from ..models.planning import plan_placement
from ..sidb.certifier_api import CertifierSpec
from ..simulator.runner import MULTI_MASTER
from ..simulator.systems import PARTITION_AWARE
from ..workloads import get_workload
from ..workloads.spec import WorkloadSpec, demands_ms
from .placement import PartitionMap

#: Fleet and placement of the update-fraction sweep.
SWEEP_FLEET = 6
SWEEP_PARTITIONS = 6
SWEEP_FACTOR = 2
#: Update fractions swept (the claim lives at the update-heavy end).
WRITE_FRACTIONS = (0.1, 0.3, 0.5)
#: Cross-partition transaction fraction of every partitioned workload.
CROSS_FRACTION = 0.1

#: Skewed partition popularity of the placement ablation.
ABLATION_PARTITIONS = 8
ABLATION_FLEET = 4
ABLATION_WEIGHTS = (8.0, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0, 1.0)
ABLATION_WRITE_FRACTION = 0.5

#: Live-cell dimensions (millisecond-scale workload, real threads).
LIVE_FLEET = 3
LIVE_PARTITIONS = 3
LIVE_WRITE_FRACTION = 0.5
LIVE_TIME_SCALE = 0.25
LIVE_WARMUP = 2.0
LIVE_DURATION = 16.0
LIVE_ABLATION_PARTITIONS = 6
LIVE_ABLATION_WEIGHTS = (6.0, 3.0, 1.0, 1.0, 1.0, 1.0)

#: Certifier-sharding A/B: an update-heavy partitioned workload on a
#: fleet large enough that a contended global sequencer saturates.
CERT_PARTITIONS = 8
CERT_CROSS_FRACTION = 0.2
CERT_FLEET = 12
CERT_DELAY = 0.012
#: Per-certification service occupancy.  Each pillar gets the occupancy
#: that makes the sequencer the bottleneck *in that pillar's throughput
#: regime*: the live cluster's absolute rate is far below the
#: simulator's (real threads), so it needs a proportionally longer
#: service time for the same comparison.
CERT_SERVICE_SIM = 0.008
CERT_SERVICE_LIVE = 0.04
CERT_LIVE_TIME_SCALE = 0.04
CERT_LIVE_WARMUP = 4.0
CERT_LIVE_DURATION = 20.0


def sweep_spec(write_fraction: float) -> WorkloadSpec:
    """The sweep's workload at one update fraction.

    Short service demands keep simulated points cheap; the writeset
    demand is deliberately substantial relative to the update demand so
    the ``(N-1) * Pw * ws`` propagation term — the thing partial
    replication attacks — is a first-order cost at high Pw.
    """
    return WorkloadSpec(
        benchmark="micro",
        mix_name=f"partition-w{int(round(write_fraction * 100)):02d}",
        mix=WorkloadMix.from_write_fraction(write_fraction),
        demands=demands_ms(
            read_cpu=6.0, read_disk=3.0,
            write_cpu=8.0, write_disk=5.0,
            writeset_cpu=2.5, writeset_disk=1.5,
        ),
        clients_per_replica=32,
        think_time=0.25,
        conflict=ConflictProfile(db_update_size=4200,
                                 updates_per_transaction=2),
        description=(
            f"partition sweep mix at Pw={write_fraction:g} "
            f"({SWEEP_PARTITIONS} partitions)"
        ),
        partitions=SWEEP_PARTITIONS,
        cross_partition_fraction=CROSS_FRACTION,
    )


def ablation_spec() -> WorkloadSpec:
    """Skew-weighted workload of the placement ablation.

    Routing feedback (least-loaded among hosts) can re-balance *client*
    work across each partition's hosts, but writeset application is
    pinned: every update to a partition is applied at **all** of its
    hosts.  A heavy writeset demand makes that pinned, placement-
    determined load the bottleneck — exactly what weight-balanced
    placement optimises.
    """
    return WorkloadSpec(
        benchmark="micro",
        mix_name="partition-skew",
        mix=WorkloadMix.from_write_fraction(ABLATION_WRITE_FRACTION),
        demands=demands_ms(
            read_cpu=6.0, read_disk=3.0,
            write_cpu=8.0, write_disk=5.0,
            writeset_cpu=10.0, writeset_disk=4.0,
        ),
        clients_per_replica=28,
        think_time=0.25,
        conflict=ConflictProfile(db_update_size=4800,
                                 updates_per_transaction=2),
        description="skewed partition popularity for placement planning",
        partitions=ABLATION_PARTITIONS,
        cross_partition_fraction=CROSS_FRACTION,
        partition_weights=ABLATION_WEIGHTS,
    )


def live_sweep_spec() -> WorkloadSpec:
    """Millisecond-scale update-heavy mix for the live A/B cells.

    The writeset demand matches the update demand, so full replication's
    propagation load is a first-order cost on a 3-replica fleet and the
    partial-placement win clears live measurement noise.
    """
    return WorkloadSpec(
        benchmark="micro",
        mix_name="partition-live",
        mix=WorkloadMix.from_write_fraction(LIVE_WRITE_FRACTION),
        demands=demands_ms(
            read_cpu=30.0, read_disk=12.0,
            write_cpu=20.0, write_disk=8.0,
            writeset_cpu=20.0, writeset_disk=8.0,
        ),
        clients_per_replica=8,
        think_time=0.2,
        conflict=ConflictProfile(db_update_size=1200,
                                 updates_per_transaction=2),
        description="update-heavy mix for live partial-replication cells",
        partitions=LIVE_PARTITIONS,
        cross_partition_fraction=CROSS_FRACTION,
    )


def live_ablation_spec() -> WorkloadSpec:
    """Skew-weighted millisecond-scale mix for the live placement cells."""
    return WorkloadSpec(
        benchmark="micro",
        mix_name="partition-live-skew",
        mix=WorkloadMix.from_write_fraction(0.4),
        demands=demands_ms(
            read_cpu=30.0, read_disk=12.0,
            write_cpu=20.0, write_disk=8.0,
            writeset_cpu=20.0, writeset_disk=8.0,
        ),
        clients_per_replica=8,
        think_time=0.2,
        conflict=ConflictProfile(db_update_size=1200,
                                 updates_per_transaction=2),
        description="skewed live mix for placement planning validation",
        partitions=LIVE_ABLATION_PARTITIONS,
        cross_partition_fraction=CROSS_FRACTION,
        partition_weights=LIVE_ABLATION_WEIGHTS,
    )


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PartialReplicationRow:
    """Full vs partial replication at one update fraction."""

    write_fraction: float
    #: Simulator measurements (``SimulationResult``).
    sim_full: object
    sim_partial: object
    #: Model predictions (``Prediction``).
    model_full: object
    model_partial: object

    @property
    def speedup(self) -> float:
        """Partial over full simulated throughput."""
        if self.sim_full.throughput <= 0:
            return 0.0
        return self.sim_partial.throughput / self.sim_full.throughput

    @property
    def model_vs_sim_deviation(self) -> float:
        """Relative throughput deviation of the partial-replication
        model against the partial-replication simulation."""
        if self.sim_partial.throughput <= 0:
            return float("inf")
        return abs(
            self.model_partial.throughput - self.sim_partial.throughput
        ) / self.sim_partial.throughput


@dataclass(frozen=True)
class PartialReplicationReport:
    """The ``partial-replication-sweep`` artifact."""

    workload: str
    pillar: str
    partition_map: PartitionMap
    rows: Tuple[PartialReplicationRow, ...]

    def row_for(self, write_fraction: float) -> Optional[PartialReplicationRow]:
        """Look up one update fraction's row."""
        for row in self.rows:
            if abs(row.write_fraction - write_fraction) < 1e-9:
                return row
        return None

    def to_text(self) -> str:
        """Render the sweep table."""
        lines = [
            f"partial replication sweep — {self.workload}, {self.pillar} "
            f"pillar, {self.partition_map.partitions} partitions x "
            f"factor {self.partition_map.replication_factor:g} over "
            f"{self.partition_map.replicas} replicas",
            f"  {'Pw':>5s} {'full(sim)':>10s} {'partial(sim)':>13s} "
            f"{'speedup':>8s} {'partial(model)':>15s} {'model dev':>10s}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.write_fraction:>5.2f} "
                f"{row.sim_full.throughput:>6.1f} tps "
                f"{row.sim_partial.throughput:>9.1f} tps "
                f"{row.speedup:>7.2f}x "
                f"{row.model_partial.throughput:>11.1f} tps "
                f"{row.model_vs_sim_deviation:>9.1%}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class LiveCell:
    """One live cluster measurement (labelled)."""

    label: str
    result: object  # ClusterResult

    @property
    def converged(self) -> bool:
        """Replication correctness of the cell."""
        return self.result.state_converged


@dataclass(frozen=True)
class PartialReplicationLiveReport:
    """The ``partial-replication-sweep-live`` artifact."""

    workload: str
    partition_map: PartitionMap
    cells: Tuple[LiveCell, ...]

    @property
    def results(self) -> Tuple[object, ...]:
        """Raw per-cell results (CLI convergence screening)."""
        return tuple(cell.result for cell in self.cells)

    def cell(self, label: str) -> Optional[object]:
        """Result of one labelled cell."""
        for candidate in self.cells:
            if candidate.label == label:
                return candidate.result
        return None

    def to_text(self) -> str:
        """Render the live A/B."""
        lines = [
            f"partial replication (live cluster) — {self.workload}, "
            f"{self.partition_map.partitions} partitions x factor "
            f"{self.partition_map.replication_factor:g} over "
            f"{self.partition_map.replicas} replicas",
            f"  {'placement':<10s} {'throughput':>11s} {'response':>9s} "
            f"{'aborts':>7s} {'replication':>22s}",
        ]
        for cell in self.cells:
            result = cell.result
            state = (
                "converged, identical" if result.state_converged
                else "DIVERGED"
            )
            lines.append(
                f"  {cell.label:<10s} {result.throughput:>7.1f} tps "
                f"{result.response_time * 1000:>6.0f} ms "
                f"{result.abort_rate:>6.2%} {state:>22s}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PlacementAblationReport:
    """The ``placement-ablation`` artifact (sim or live pillar)."""

    workload: str
    pillar: str
    weights: Tuple[float, ...]
    #: (label, result) per placement cell.
    cells: Tuple[Tuple[str, object], ...]
    #: The planner's own rendering of the balanced placement.
    plan_text: str = ""

    @property
    def results(self) -> Tuple[object, ...]:
        """Raw per-cell results (CLI convergence screening)."""
        return tuple(result for _, result in self.cells)

    def cell(self, label: str) -> Optional[object]:
        """Result of one placement cell."""
        for name, result in self.cells:
            if name == label:
                return result
        return None

    def to_text(self) -> str:
        """Render the placement comparison."""
        skew = " ".join(f"{w:g}" for w in self.weights)
        lines = [
            f"placement ablation — {self.workload}, {self.pillar} pillar, "
            f"partition weights [{skew}]",
            f"  {'placement':<16s} {'throughput':>11s} {'response':>9s} "
            f"{'aborts':>7s}",
        ]
        for name, result in self.cells:
            lines.append(
                f"  {name:<16s} {result.throughput:>7.1f} tps "
                f"{result.response_time * 1000:>6.0f} ms "
                f"{result.abort_rate:>6.2%}"
            )
        if self.plan_text:
            lines.append("  balanced plan:")
            for line in self.plan_text.splitlines():
                lines.append("    " + line)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# partial-replication-sweep (simulator + model)
# ----------------------------------------------------------------------

def sweep_map() -> PartitionMap:
    """The sweep's partial placement (ring, factor 2)."""
    return PartitionMap.ring(SWEEP_PARTITIONS, SWEEP_FLEET, SWEEP_FACTOR)


def _sweep_points(settings) -> List:
    partial = sweep_map()
    points = []
    for write_fraction in WRITE_FRACTIONS:
        spec = sweep_spec(write_fraction)
        config = spec.replication_config(
            SWEEP_FLEET,
            load_balancer_delay=settings.load_balancer_delay,
            certifier_delay=settings.certifier_delay,
        )
        task = profile_task(spec, settings)
        prefix = f"{write_fraction:g}"
        # Full replication is the partitioned spec with no map (the
        # resolver defaults to PartitionMap.full): identical workload,
        # identical routing policy, only the placement differs.
        points.append(sim_point(
            spec, config, MULTI_MASTER,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
            lb_policy=PARTITION_AWARE,
            telemetry=getattr(settings, "telemetry", None),
            tag=f"{prefix}:sim-full",
        ))
        points.append(sim_point(
            spec, config, MULTI_MASTER,
            seed=settings.seed,
            warmup=settings.sim_warmup,
            duration=settings.sim_duration,
            lb_policy=PARTITION_AWARE,
            partition_map=partial,
            telemetry=getattr(settings, "telemetry", None),
            tag=f"{prefix}:sim-partial",
        ))
        points.append(model_point(
            spec, config, MULTI_MASTER,
            profile=task,
            tag=f"{prefix}:model-full",
        ))
        points.append(model_point(
            spec, config, MULTI_MASTER,
            profile=task,
            partition_map=partial,
            tag=f"{prefix}:model-partial",
        ))
    return points


def _assemble_sweep(settings, points, results) -> PartialReplicationReport:
    by_tag = dict(zip((p.tag for p in points), results))
    rows = tuple(
        PartialReplicationRow(
            write_fraction=wf,
            sim_full=by_tag[f"{wf:g}:sim-full"],
            sim_partial=by_tag[f"{wf:g}:sim-partial"],
            model_full=by_tag[f"{wf:g}:model-full"],
            model_partial=by_tag[f"{wf:g}:model-partial"],
        )
        for wf in WRITE_FRACTIONS
    )
    return PartialReplicationReport(
        workload="micro/partition-sweep",
        pillar="simulator",
        partition_map=sweep_map(),
        rows=rows,
    )


SWEEP = register_scenario(Scenario(
    name="partial-replication-sweep",
    title="Partial vs full replication across update fractions (sim + model)",
    kind="partition",
    metrics=("throughput", "speedup", "model_vs_sim_deviation"),
    points=_sweep_points,
    assemble=_assemble_sweep,
    aliases=("partial-replication", "partition-sweep"),
))


# ----------------------------------------------------------------------
# partial-replication-sweep-live (live cluster)
# ----------------------------------------------------------------------

def live_sweep_map() -> PartitionMap:
    """The live A/B's partial placement (ring, factor 2)."""
    return PartitionMap.ring(LIVE_PARTITIONS, LIVE_FLEET, SWEEP_FACTOR)


def _live_sweep_points(settings) -> List:
    spec = live_sweep_spec()
    config = spec.replication_config(
        LIVE_FLEET, load_balancer_delay=0.0005, certifier_delay=0.002,
    )
    shared = dict(
        seed=settings.seed,
        warmup=LIVE_WARMUP,
        duration=LIVE_DURATION,
        time_scale=LIVE_TIME_SCALE,
        lb_policy=PARTITION_AWARE,
        telemetry=getattr(settings, "telemetry", None),
        certifier=getattr(settings, "certifier", None),
    )
    return [
        cluster_point(spec, config, MULTI_MASTER, tag="full", **shared),
        cluster_point(spec, config, MULTI_MASTER, tag="partial",
                      partition_map=live_sweep_map(), **shared),
    ]


def _assemble_live_sweep(settings, points, results):
    cells = tuple(
        LiveCell(label=point.tag, result=result)
        for point, result in zip(points, results)
    )
    return PartialReplicationLiveReport(
        workload=live_sweep_spec().name,
        partition_map=live_sweep_map(),
        cells=cells,
    )


SWEEP_LIVE = register_scenario(Scenario(
    name="partial-replication-sweep-live",
    title="Live-cluster partial vs full replication (scoped propagation)",
    kind="partition",
    metrics=("throughput", "response_time", "converged"),
    points=_live_sweep_points,
    assemble=_assemble_live_sweep,
    aliases=("partial-replication-live",),
    tags=("live",),
))


# ----------------------------------------------------------------------
# placement-ablation (simulator)
# ----------------------------------------------------------------------

def balanced_map(partitions: int, replicas: int,
                 weights: Tuple[float, ...]) -> PartitionMap:
    """The planner's weight-balanced placement for one ablation cell."""
    return plan_placement(partitions, replicas, SWEEP_FACTOR,
                          weights=weights).partition_map


def _ablation_points(settings) -> List:
    spec = ablation_spec()
    config = spec.replication_config(
        ABLATION_FLEET,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    shared = dict(
        seed=settings.seed,
        warmup=settings.sim_warmup,
        duration=settings.sim_duration,
        lb_policy=PARTITION_AWARE,
        telemetry=getattr(settings, "telemetry", None),
        certifier=getattr(settings, "certifier", None),
    )
    oblivious = PartitionMap.ring(ABLATION_PARTITIONS, ABLATION_FLEET,
                                  SWEEP_FACTOR)
    balanced = balanced_map(ABLATION_PARTITIONS, ABLATION_FLEET,
                            ABLATION_WEIGHTS)
    return [
        sim_point(spec, config, MULTI_MASTER, tag="ring-oblivious",
                  partition_map=oblivious, **shared),
        sim_point(spec, config, MULTI_MASTER, tag="weight-balanced",
                  partition_map=balanced, **shared),
    ]


def _assemble_ablation(settings, points, results) -> PlacementAblationReport:
    plan = plan_placement(ABLATION_PARTITIONS, ABLATION_FLEET, SWEEP_FACTOR,
                          weights=ABLATION_WEIGHTS)
    return PlacementAblationReport(
        workload=ablation_spec().name,
        pillar="simulator",
        weights=ABLATION_WEIGHTS,
        cells=tuple(
            (point.tag, result) for point, result in zip(points, results)
        ),
        plan_text=plan.to_text(),
    )


ABLATION = register_scenario(Scenario(
    name="placement-ablation",
    title="Placement planning: weight-balanced vs oblivious ring (skewed load)",
    kind="partition",
    metrics=("throughput", "response_time"),
    points=_ablation_points,
    assemble=_assemble_ablation,
    aliases=("placement",),
))


# ----------------------------------------------------------------------
# placement-ablation-live (live cluster)
# ----------------------------------------------------------------------

def _live_ablation_points(settings) -> List:
    spec = live_ablation_spec()
    config = spec.replication_config(
        LIVE_FLEET, load_balancer_delay=0.0005, certifier_delay=0.002,
    )
    shared = dict(
        seed=settings.seed,
        warmup=LIVE_WARMUP,
        duration=LIVE_DURATION,
        time_scale=LIVE_TIME_SCALE,
        lb_policy=PARTITION_AWARE,
        telemetry=getattr(settings, "telemetry", None),
        certifier=getattr(settings, "certifier", None),
    )
    oblivious = PartitionMap.ring(LIVE_ABLATION_PARTITIONS, LIVE_FLEET,
                                  SWEEP_FACTOR)
    balanced = balanced_map(LIVE_ABLATION_PARTITIONS, LIVE_FLEET,
                            LIVE_ABLATION_WEIGHTS)
    return [
        cluster_point(spec, config, MULTI_MASTER, tag="ring-oblivious",
                      partition_map=oblivious, **shared),
        cluster_point(spec, config, MULTI_MASTER, tag="weight-balanced",
                      partition_map=balanced, **shared),
    ]


def _assemble_live_ablation(settings, points, results) -> PlacementAblationReport:
    plan = plan_placement(LIVE_ABLATION_PARTITIONS, LIVE_FLEET, SWEEP_FACTOR,
                          weights=LIVE_ABLATION_WEIGHTS)
    return PlacementAblationReport(
        workload=live_ablation_spec().name,
        pillar="cluster",
        weights=LIVE_ABLATION_WEIGHTS,
        cells=tuple(
            (point.tag, result) for point, result in zip(points, results)
        ),
        plan_text=plan.to_text(),
    )


ABLATION_LIVE = register_scenario(Scenario(
    name="placement-ablation-live",
    title="Live-cluster placement planning: balanced vs oblivious ring",
    kind="partition",
    metrics=("throughput", "response_time", "converged"),
    points=_live_ablation_points,
    assemble=_assemble_live_ablation,
    aliases=("placement-live",),
    tags=("live",),
))

# ----------------------------------------------------------------------
# certifier-sharding (simulator + model)
# ----------------------------------------------------------------------

def certifier_workload() -> WorkloadSpec:
    """Update-heavy partitioned workload of the certifier A/B.

    TPC-W ordering (Pw=0.5) partitioned eight ways: enough update
    traffic that a contended global sequencer saturates a 12-replica
    fleet, and enough partitions that sharding buys real parallelism.
    """
    return get_workload("tpcw/ordering").with_partitions(
        CERT_PARTITIONS, cross_partition_fraction=CERT_CROSS_FRACTION
    )


@dataclass(frozen=True)
class CertifierShardingReport:
    """The ``certifier-sharding`` artifact (sim or live pillar)."""

    workload: str
    pillar: str
    partitions: int
    service_time: float
    #: (label, result) per certifier cell.
    cells: Tuple[Tuple[str, object], ...]

    @property
    def results(self) -> Tuple[object, ...]:
        """Raw per-cell results (CLI convergence/audit screening)."""
        return tuple(result for _, result in self.cells)

    @property
    def converged(self) -> bool:
        """Replication correctness of every live cell (sim cells pass)."""
        return all(
            getattr(result, "state_converged", True) for result in self.results
        )

    def cell(self, label: str) -> Optional[object]:
        """Result of one certifier cell."""
        for name, result in self.cells:
            if name == label:
                return result
        return None

    def speedup(self, pillar_prefix: str) -> float:
        """Sharded over global throughput within one pillar's cells."""
        sharded = self.cell(f"{pillar_prefix}-sharded")
        global_ = self.cell(f"{pillar_prefix}-global")
        if sharded is None or global_ is None or global_.throughput <= 0:
            return 0.0
        return sharded.throughput / global_.throughput

    def to_text(self) -> str:
        """Render the certifier comparison."""
        lines = [
            f"certifier sharding — {self.workload}, {self.pillar} pillar, "
            f"{self.partitions} certifier shards, per-certification "
            f"service {self.service_time * 1000:g} ms",
            f"  {'certifier':<16s} {'throughput':>11s} {'response':>9s} "
            f"{'aborts':>7s}",
        ]
        for name, result in self.cells:
            lines.append(
                f"  {name:<16s} {result.throughput:>7.1f} tps "
                f"{result.response_time * 1000:>6.0f} ms "
                f"{result.abort_rate:>6.2%}"
            )
        for prefix in ("sim", "live", "model"):
            ratio = self.speedup(prefix)
            if ratio > 0.0:
                lines.append(f"  {prefix} speedup (sharded/global): "
                             f"{ratio:.2f}x")
        return "\n".join(lines)


def _certifier_points(settings) -> List:
    spec = certifier_workload()
    config = spec.replication_config(
        CERT_FLEET,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=CERT_DELAY,
    )
    task = profile_task(spec, settings)
    shared = dict(
        seed=settings.seed,
        warmup=settings.sim_warmup,
        duration=settings.sim_duration,
        lb_policy=PARTITION_AWARE,
        telemetry=getattr(settings, "telemetry", None),
    )
    # Both arms carry the SAME positive service time: the A/B isolates
    # the protocol (one sequencer vs per-partition shards), not the cost
    # of certification itself.
    return [
        sim_point(spec, config, MULTI_MASTER, tag="sim-global",
                  certifier=CertifierSpec("global",
                                          service_time=CERT_SERVICE_SIM),
                  **shared),
        sim_point(spec, config, MULTI_MASTER, tag="sim-sharded",
                  certifier=CertifierSpec("sharded",
                                          service_time=CERT_SERVICE_SIM),
                  **shared),
        model_point(spec, config, MULTI_MASTER, profile=task,
                    tag="model-global",
                    certifier=CertifierSpec("global",
                                            service_time=CERT_SERVICE_SIM)),
        model_point(spec, config, MULTI_MASTER, profile=task,
                    tag="model-sharded",
                    certifier=CertifierSpec("sharded",
                                            service_time=CERT_SERVICE_SIM)),
    ]


def _assemble_certifier(settings, points, results) -> CertifierShardingReport:
    return CertifierShardingReport(
        workload=certifier_workload().name,
        pillar="simulator+model",
        partitions=CERT_PARTITIONS,
        service_time=CERT_SERVICE_SIM,
        cells=tuple(
            (point.tag, result) for point, result in zip(points, results)
        ),
    )


CERTIFIER = register_scenario(Scenario(
    name="certifier-sharding",
    title="Certifier sharding: global sequencer vs per-partition shards "
    "(sim + model)",
    kind="partition",
    metrics=("throughput", "speedup", "abort_rate"),
    points=_certifier_points,
    assemble=_assemble_certifier,
    aliases=("sharded-certifier",),
))


# ----------------------------------------------------------------------
# certifier-sharding-live (live cluster)
# ----------------------------------------------------------------------

def _live_certifier_points(settings) -> List:
    spec = certifier_workload()
    config = spec.replication_config(
        CERT_FLEET,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=CERT_DELAY,
    )
    shared = dict(
        seed=settings.seed,
        warmup=CERT_LIVE_WARMUP,
        duration=CERT_LIVE_DURATION,
        time_scale=CERT_LIVE_TIME_SCALE,
        lb_policy=PARTITION_AWARE,
        telemetry=getattr(settings, "telemetry", None),
    )
    return [
        cluster_point(spec, config, MULTI_MASTER, tag="live-global",
                      certifier=CertifierSpec("global",
                                              service_time=CERT_SERVICE_LIVE),
                      **shared),
        cluster_point(spec, config, MULTI_MASTER, tag="live-sharded",
                      certifier=CertifierSpec("sharded",
                                              service_time=CERT_SERVICE_LIVE),
                      **shared),
    ]


def _assemble_live_certifier(settings, points, results):
    return CertifierShardingReport(
        workload=certifier_workload().name,
        pillar="cluster",
        partitions=CERT_PARTITIONS,
        service_time=CERT_SERVICE_LIVE,
        cells=tuple(
            (point.tag, result) for point, result in zip(points, results)
        ),
    )


CERTIFIER_LIVE = register_scenario(Scenario(
    name="certifier-sharding-live",
    title="Live-cluster certifier sharding: global vs per-partition shards",
    kind="partition",
    metrics=("throughput", "response_time", "converged"),
    points=_live_certifier_points,
    assemble=_assemble_live_certifier,
    aliases=("sharded-certifier-live",),
    tags=("live",),
))

#: Scenario names grouped for the ``repro partition`` verb.
SIM_SCENARIOS = ("partial-replication-sweep", "placement-ablation",
                 "certifier-sharding")
LIVE_SCENARIOS = ("partial-replication-sweep-live", "placement-ablation-live",
                  "certifier-sharding-live")
