"""Asymptotic bounds on closed-network performance [Lazowska 1984, ch. 5].

The bounds give quick capacity-planning envelopes without solving MVA and
are used by tests as invariants that every exact MVA solution must satisfy:

* throughput is bounded by ``min(N / (D + Z), 1 / Dmax)``;
* response time is bounded below by ``max(D, N * Dmax - Z)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError
from .network import Center, CenterKind, ClosedNetwork


@dataclass(frozen=True)
class AsymptoticBounds:
    """Throughput/response-time envelopes for a network at population N."""

    population: float
    throughput_upper: float
    response_time_lower: float
    #: Population at which the light-load and heavy-load throughput
    #: asymptotes cross — the classic "knee" of the scalability curve.
    saturation_population: float


def asymptotic_bounds(network: ClosedNetwork, population: float) -> AsymptoticBounds:
    """Compute asymptotic bounds for *network* with *population* clients."""
    if population < 0:
        raise ConfigurationError("population must be non-negative")
    total_demand = network.total_demand
    queueing = [c for c in network.centers if c.kind is CenterKind.QUEUEING]
    d_max = max((c.demand for c in queueing), default=0.0)
    z = network.think_time

    light = population / (total_demand + z) if (total_demand + z) > 0 else float("inf")
    heavy = 1.0 / d_max if d_max > 0 else float("inf")
    throughput_upper = min(light, heavy)

    delay_demand = sum(
        c.demand for c in network.centers if c.kind is CenterKind.DELAY
    )
    if d_max > 0:
        response_lower = max(total_demand, population * d_max - z + delay_demand * 0.0)
        response_lower = max(total_demand, population * d_max - z)
    else:
        response_lower = total_demand

    if d_max > 0:
        saturation = (total_demand + z) / d_max
    else:
        saturation = float("inf")
    return AsymptoticBounds(
        population=population,
        throughput_upper=throughput_upper,
        response_time_lower=response_lower,
        saturation_population=saturation,
    )


@dataclass(frozen=True)
class BalancedBounds:
    """Balanced-job bounds: tighter than asymptotic [Lazowska 1984, ch. 5.4].

    Lower bound (pessimistic): every other customer delays a tagged one by
    at most the bottleneck demand, so ``X >= N / (D + Z + (N-1)·Dmax)``.

    Upper bound: among networks with the same total queueing demand spread
    over the same number of centers (and the same delays), the *balanced*
    one maximises throughput; we solve that balanced equivalent exactly
    with MVA and cap by the bottleneck capacity ``1/Dmax``.
    """

    population: float
    throughput_lower: float
    throughput_upper: float

    def contains(self, throughput: float, tolerance: float = 1e-9) -> bool:
        """True when *throughput* lies within the bounds."""
        return (
            self.throughput_lower - tolerance
            <= throughput
            <= self.throughput_upper + tolerance
        )


def balanced_bounds(network: ClosedNetwork, population: float) -> BalancedBounds:
    """Compute balanced-job bounds for *network* at *population*."""
    if population < 0:
        raise ConfigurationError("population must be non-negative")
    queueing = [c for c in network.centers if c.kind is CenterKind.QUEUEING]
    if not queueing:
        # Pure delay network: throughput is exactly N / (D + Z).
        exact = (
            population / (network.total_demand + network.think_time)
            if (network.total_demand + network.think_time) > 0
            else float("inf")
        )
        return BalancedBounds(
            population=population,
            throughput_lower=exact,
            throughput_upper=exact,
        )
    d_total = network.total_demand
    d_max = max(c.demand for c in queueing)
    d_avg = sum(c.demand for c in queueing) / len(queueing)
    z = network.think_time
    n = population
    lower = n / (d_total + z + max(0.0, n - 1) * d_max) if n > 0 else 0.0

    if n == 0:
        upper = 0.0
    else:
        from .mva import solve_mva  # local import: bounds <- mva only here

        balanced_centers = tuple(
            Center(name=f"balanced{i}", kind=CenterKind.QUEUEING, demand=d_avg)
            for i in range(len(queueing))
        ) + tuple(
            c for c in network.centers if c.kind is CenterKind.DELAY
        )
        balanced_network = ClosedNetwork(
            centers=balanced_centers, think_time=z
        )
        upper = solve_mva(balanced_network, n).throughput
        upper = min(upper, 1.0 / d_max if d_max > 0 else float("inf"))
    return BalancedBounds(
        population=population,
        throughput_lower=lower,
        throughput_upper=upper,
    )


def max_useful_replicas(
    per_replica_capacity: float, workload_rate_per_replica: float
) -> float:
    """Upper bound on useful replicas when each added replica also adds load.

    A coarse planning helper: if each replica contributes capacity
    ``per_replica_capacity`` (tps) but the scaled workload adds
    ``workload_rate_per_replica`` (tps) of offered load per replica, the
    system stays un-saturated while the ratio exceeds one.
    """
    if per_replica_capacity <= 0:
        raise ConfigurationError("capacity must be positive")
    if workload_rate_per_replica <= 0:
        return float("inf")
    return per_replica_capacity / workload_rate_per_replica
