"""Closed queueing networks and exact Mean Value Analysis."""

from .bounds import (
    AsymptoticBounds,
    BalancedBounds,
    asymptotic_bounds,
    balanced_bounds,
    max_useful_replicas,
)
from .mva import (
    MVASolution,
    MVAStepper,
    MulticlassSolution,
    approximate_mva,
    solve_mva,
    solve_mva_multiclass,
)
from .network import (
    Center,
    CenterKind,
    ClosedNetwork,
    MulticlassNetwork,
    delay_center,
    queueing_center,
)
from .operational import (
    closed_loop_throughput,
    interactive_response_time,
    littles_law_population,
    utilization,
    utilization_law_demand,
)

__all__ = [
    "AsymptoticBounds",
    "BalancedBounds",
    "balanced_bounds",
    "Center",
    "CenterKind",
    "ClosedNetwork",
    "MVASolution",
    "MVAStepper",
    "MulticlassNetwork",
    "MulticlassSolution",
    "approximate_mva",
    "asymptotic_bounds",
    "closed_loop_throughput",
    "delay_center",
    "interactive_response_time",
    "littles_law_population",
    "max_useful_replicas",
    "queueing_center",
    "solve_mva",
    "solve_mva_multiclass",
    "utilization",
    "utilization_law_demand",
]
