"""Exact Mean Value Analysis (MVA) for closed queueing networks.

This module implements the standard algorithms the paper relies on
[Lazowska 1984]:

* :class:`MVAStepper` — exact single-class MVA, advanced one customer at a
  time.  The multi-master model needs this incremental form because the
  paper re-estimates the conflict window (and hence the service demands)
  *between MVA iterations* ("we approximate CW(N) at iteration i+1 by the
  sum of CPU, disk residence time and certification time at iteration i",
  §4.1.1).
* :func:`solve_mva` — convenience wrapper with linear interpolation for
  fractional populations (the single-master balancing algorithm produces
  non-integer client counts such as ``Pr*C*N/(N-1)``).
* :func:`solve_mva_multiclass` — exact multiclass MVA over the full
  population lattice, used by the single-master model when the master
  serves both update transactions and extra read-only transactions.
* :func:`approximate_mva` — Schweitzer's fixed-point approximation, kept as
  an ablation to show exact MVA is worth it at these population sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError, ConvergenceError
from .network import Center, CenterKind, ClosedNetwork, MulticlassNetwork


@dataclass(frozen=True)
class MVASolution:
    """Steady-state metrics of a single-class closed network.

    ``response_time`` covers the service centers only (think time excluded),
    matching how the paper reports client-perceived latency.
    """

    population: float
    throughput: float
    response_time: float
    residence_times: Dict[str, float] = field(default_factory=dict)
    queue_lengths: Dict[str, float] = field(default_factory=dict)
    #: Queue length an arriving customer sees (the arrival theorem: the
    #: network state with one customer removed).  Used to derive
    #: class-specific residence times such as the conflict window.
    arrival_queue_lengths: Dict[str, float] = field(default_factory=dict)
    utilization: Dict[str, float] = field(default_factory=dict)

    def residence_seen_by(
        self,
        demands: Mapping[str, float],
        queue_cap: Optional[float] = None,
    ) -> float:
        """Residence time of a tagged customer with custom *demands*.

        By the arrival theorem a customer arriving at queueing center *k*
        waits for the ``Q_k(n-1)`` customers already there and then receives
        its own service.  This lets us evaluate the residence time of a
        specific transaction class (e.g. update transactions, whose demand
        is ``wc`` rather than the mix average) in a network solved with
        mix-average demands.

        ``queue_cap`` bounds the queue an arrival can share the server with,
        modelling admission control: under a multiprogramming level of M, a
        transaction *executes* alongside at most M-1 others, so its
        execution time (and hence its conflict window) is bounded even when
        the closed-loop population piles up in the admission queue.
        """
        total = 0.0
        for name, demand in demands.items():
            if name not in self.arrival_queue_lengths:
                raise ConfigurationError(f"unknown center {name!r}")
            queue = self.arrival_queue_lengths[name]
            if queue_cap is not None:
                queue = min(queue, queue_cap)
            total += demand * (1.0 + queue)
        return total


class MVAStepper:
    """Exact MVA advanced one customer at a time with mutable demands.

    Usage::

        stepper = MVAStepper(network)
        for _ in range(population):
            stepper.set_demands({"cpu": new_cpu_demand})   # optional
            solution = stepper.step()

    Each :meth:`step` adds one customer and returns the exact solution **if
    the demands had been constant at their current values** — which is the
    approximation the paper makes when it lets the conflict window evolve
    with the iteration number.
    """

    def __init__(self, network: ClosedNetwork) -> None:
        self._network = network
        self._centers: List[Center] = list(network.centers)
        self._think_time = network.think_time
        self._queue: Dict[str, float] = {c.name: 0.0 for c in self._centers}
        self._population = 0
        self._demands: Dict[str, float] = {c.name: c.demand for c in self._centers}

    @property
    def population(self) -> int:
        """Number of customers added so far."""
        return self._population

    @property
    def demands(self) -> Dict[str, float]:
        """Current per-center demands (a copy)."""
        return dict(self._demands)

    def set_demands(self, demands: Mapping[str, float]) -> None:
        """Replace the demands of the named centers before the next step."""
        for name, demand in demands.items():
            if name not in self._demands:
                raise ConfigurationError(f"unknown center {name!r}")
            if demand < 0.0:
                raise ConfigurationError(
                    f"center {name!r} given negative demand {demand}"
                )
            self._demands[name] = demand

    def step(self) -> MVASolution:
        """Add one customer and return the resulting network solution."""
        arrival_queue = dict(self._queue)
        self._population += 1
        n = self._population

        residence: Dict[str, float] = {}
        for center in self._centers:
            demand = self._demands[center.name]
            if center.kind is CenterKind.QUEUEING:
                residence[center.name] = demand * (1.0 + arrival_queue[center.name])
            else:
                residence[center.name] = demand

        total_residence = sum(residence.values())
        throughput = n / (self._think_time + total_residence)

        queue = {name: throughput * r for name, r in residence.items()}
        self._queue = queue

        utilization = {
            c.name: min(1.0, throughput * self._demands[c.name])
            for c in self._centers
            if c.kind is CenterKind.QUEUEING
        }
        return MVASolution(
            population=float(n),
            throughput=throughput,
            response_time=total_residence,
            residence_times=residence,
            queue_lengths=queue,
            arrival_queue_lengths=arrival_queue,
            utilization=utilization,
        )


def _solve_integer(network: ClosedNetwork, population: int) -> MVASolution:
    if population == 0:
        zero = {c.name: 0.0 for c in network.centers}
        return MVASolution(
            population=0.0,
            throughput=0.0,
            response_time=0.0,
            residence_times=dict(zero),
            queue_lengths=dict(zero),
            arrival_queue_lengths=dict(zero),
            utilization={
                c.name: 0.0
                for c in network.centers
                if c.kind is CenterKind.QUEUEING
            },
        )
    stepper = MVAStepper(network)
    solution: Optional[MVASolution] = None
    for _ in range(population):
        solution = stepper.step()
    assert solution is not None
    return solution


def _interpolate(low: MVASolution, high: MVASolution, frac: float) -> MVASolution:
    def mix(a: float, b: float) -> float:
        return a + (b - a) * frac

    def mix_map(a: Dict[str, float], b: Dict[str, float]) -> Dict[str, float]:
        return {k: mix(a[k], b[k]) for k in a}

    return MVASolution(
        population=mix(low.population, high.population),
        throughput=mix(low.throughput, high.throughput),
        response_time=mix(low.response_time, high.response_time),
        residence_times=mix_map(low.residence_times, high.residence_times),
        queue_lengths=mix_map(low.queue_lengths, high.queue_lengths),
        arrival_queue_lengths=mix_map(
            low.arrival_queue_lengths, high.arrival_queue_lengths
        ),
        utilization=mix_map(low.utilization, high.utilization),
    )


def solve_mva(network: ClosedNetwork, population: float) -> MVASolution:
    """Solve a single-class closed network exactly.

    Integer populations use the exact recurrence; fractional populations are
    linearly interpolated between the two neighbouring integer solutions
    (needed by the single-master balancing algorithm, whose per-slave client
    counts are generally not integers).
    """
    if population < 0:
        raise ConfigurationError(f"population must be >= 0, got {population}")
    floor = int(population)
    if floor == population:
        return _solve_integer(network, floor)
    low = _solve_integer(network, floor)
    high = _solve_integer(network, floor + 1)
    return _interpolate(low, high, population - floor)


def approximate_mva(
    network: ClosedNetwork,
    population: float,
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
) -> MVASolution:
    """Schweitzer's approximate MVA (fixed point on queue lengths).

    Provided as an ablation: at the population sizes of the paper's
    experiments (tens of clients per replica) the exact algorithm is cheap,
    and the benchmark ``bench_ablation_mva`` quantifies the approximation
    error.  For ``population == 0`` returns the empty-network solution.
    """
    if population < 0:
        raise ConfigurationError(f"population must be >= 0, got {population}")
    if population == 0:
        return _solve_integer(network, 0)

    centers = list(network.centers)
    queueing = [c for c in centers if c.kind is CenterKind.QUEUEING]
    n = float(population)
    # Initial guess: customers spread evenly over queueing centers.
    queue: Dict[str, float] = {
        c.name: n / max(1, len(queueing)) for c in queueing
    }
    throughput = 0.0
    residence: Dict[str, float] = {}
    for iteration in range(max_iterations):
        residence = {}
        for center in centers:
            if center.kind is CenterKind.QUEUEING:
                # Schweitzer: an arrival sees (n-1)/n of the time-average queue.
                seen = queue[center.name] * (n - 1.0) / n
                residence[center.name] = center.demand * (1.0 + seen)
            else:
                residence[center.name] = center.demand
        total = sum(residence.values())
        throughput = n / (network.think_time + total)
        new_queue = {c.name: throughput * residence[c.name] for c in queueing}
        delta = max(
            (abs(new_queue[k] - queue[k]) for k in queue), default=0.0
        )
        queue = new_queue
        if delta < tolerance:
            break
    else:
        raise ConvergenceError(
            "Schweitzer approximation did not converge", iterations=max_iterations
        )

    arrival = {c.name: queue.get(c.name, 0.0) * (n - 1.0) / n for c in centers}
    queue_all = {
        c.name: queue.get(c.name, throughput * residence[c.name]) for c in centers
    }
    utilization = {
        c.name: min(1.0, throughput * c.demand) for c in queueing
    }
    return MVASolution(
        population=n,
        throughput=throughput,
        response_time=sum(residence.values()),
        residence_times=residence,
        queue_lengths=queue_all,
        arrival_queue_lengths=arrival,
        utilization=utilization,
    )


@dataclass(frozen=True)
class MulticlassSolution:
    """Per-class metrics of a multiclass closed network."""

    populations: Dict[str, float]
    throughputs: Dict[str, float]
    response_times: Dict[str, float]
    residence_times: Dict[str, Dict[str, float]]
    queue_lengths: Dict[str, float]
    utilization: Dict[str, float]

    @property
    def total_throughput(self) -> float:
        """Sum of class throughputs."""
        return sum(self.throughputs.values())


def solve_mva_multiclass(
    network: MulticlassNetwork, populations: Mapping[str, float]
) -> MulticlassSolution:
    """Exact multiclass MVA over the full population lattice.

    Fractional per-class populations are handled by multilinear
    interpolation over the neighbouring integer lattice points.  Complexity
    is the product of the class populations; the single-master balancing
    algorithm only ever needs two classes with a few hundred customers each,
    which solves in well under a second.
    """
    classes = network.classes
    unknown = set(populations) - set(classes)
    if unknown:
        raise ConfigurationError(f"unknown classes {sorted(unknown)}")
    pops = [float(populations.get(k, 0.0)) for k in classes]
    if any(p < 0 for p in pops):
        raise ConfigurationError("populations must be non-negative")

    floors = [int(p) for p in pops]
    fracs = [p - f for p, f in zip(pops, floors)]
    if all(f == 0.0 for f in fracs):
        return _solve_multiclass_integer(network, dict(zip(classes, floors)))

    # Multilinear interpolation over the corners of the fractional cell.
    corners: List[Tuple[float, MulticlassSolution]] = []
    for offsets in itertools.product(
        *[[0, 1] if frac > 0.0 else [0] for frac in fracs]
    ):
        weight = 1.0
        corner_pop = {}
        for klass, floor, frac, off in zip(classes, floors, fracs, offsets):
            weight *= frac if off else (1.0 - frac if frac > 0.0 else 1.0)
            corner_pop[klass] = floor + off
        if weight == 0.0:
            continue
        corners.append((weight, _solve_multiclass_integer(network, corner_pop)))

    return _blend_multiclass(classes, network, pops, corners)


def _blend_multiclass(
    classes: Sequence[str],
    network: MulticlassNetwork,
    pops: Sequence[float],
    corners: Sequence[Tuple[float, MulticlassSolution]],
) -> MulticlassSolution:
    names = [c.name for c in network.centers]

    def blend(getter) -> float:
        return sum(w * getter(sol) for w, sol in corners)

    throughputs = {k: blend(lambda s, k=k: s.throughputs[k]) for k in classes}
    response = {k: blend(lambda s, k=k: s.response_times[k]) for k in classes}
    residence = {
        k: {
            name: blend(lambda s, k=k, name=name: s.residence_times[k][name])
            for name in names
        }
        for k in classes
    }
    queues = {name: blend(lambda s, name=name: s.queue_lengths[name]) for name in names}
    util = {name: blend(lambda s, name=name: s.utilization[name]) for name in names}
    return MulticlassSolution(
        populations=dict(zip(classes, pops)),
        throughputs=throughputs,
        response_times=response,
        residence_times=residence,
        queue_lengths=queues,
        utilization=util,
    )


def _solve_multiclass_integer(
    network: MulticlassNetwork, populations: Mapping[str, int]
) -> MulticlassSolution:
    classes = network.classes
    centers = list(network.centers)
    n_centers = len(centers)
    demands = {k: list(network.demands[k]) for k in classes}
    think = {k: network.think_times[k] for k in classes}
    target = tuple(int(populations.get(k, 0)) for k in classes)

    # Dynamic program over the population lattice.  queue[state][k] is the
    # mean queue length at center k with population vector `state`.
    zero_state = tuple(0 for _ in classes)
    queue: Dict[Tuple[int, ...], List[float]] = {zero_state: [0.0] * n_centers}
    ranges = [range(t + 1) for t in target]

    last_throughputs = {k: 0.0 for k in classes}
    last_residence = {k: [0.0] * n_centers for k in classes}

    # Iterate lattice points in an order where all predecessors are ready.
    for state in itertools.product(*ranges):
        if state == zero_state:
            continue
        residences: Dict[str, List[float]] = {}
        throughputs: Dict[str, float] = {}
        q_now = [0.0] * n_centers
        for ci, klass in enumerate(classes):
            if state[ci] == 0:
                continue
            prev = list(state)
            prev[ci] -= 1
            prev_queue = queue[tuple(prev)]
            r_class = [0.0] * n_centers
            for k, center in enumerate(centers):
                d = demands[klass][k]
                if center.kind is CenterKind.QUEUEING:
                    r_class[k] = d * (1.0 + prev_queue[k])
                else:
                    r_class[k] = d
            total = sum(r_class)
            x = state[ci] / (think[klass] + total) if (think[klass] + total) else 0.0
            residences[klass] = r_class
            throughputs[klass] = x
            for k in range(n_centers):
                q_now[k] += x * r_class[k]
        queue[tuple(state)] = q_now
        if tuple(state) == target:
            last_throughputs.update(throughputs)
            for klass, r_class in residences.items():
                last_residence[klass] = r_class

    names = [c.name for c in centers]
    residence_out = {
        k: dict(zip(names, last_residence[k])) for k in classes
    }
    response_out = {k: sum(last_residence[k]) for k in classes}
    queue_out = dict(zip(names, queue[target]))
    util_out = {}
    for k_idx, center in enumerate(centers):
        if center.kind is CenterKind.QUEUEING:
            util_out[center.name] = min(
                1.0,
                sum(
                    last_throughputs[klass] * demands[klass][k_idx]
                    for klass in classes
                ),
            )
        else:
            util_out[center.name] = 0.0
    return MulticlassSolution(
        populations={k: float(populations.get(k, 0)) for k in classes},
        throughputs=dict(last_throughputs),
        response_times=response_out,
        residence_times=residence_out,
        queue_lengths=queue_out,
        utilization=util_out,
    )
