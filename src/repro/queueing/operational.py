"""Operational laws used for profiling and sanity checks.

The profiler estimates service demands with the **Utilization Law**
(``D = U / X``, §4.1.1 of the paper) and the experiments convert between
populations, throughput, and response time with **Little's law** and the
**interactive response-time law**.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError


def utilization_law_demand(busy_time: float, completions: float) -> float:
    """Service demand from measured busy time and completion count.

    ``D = U / X = (busy_time / T) / (completions / T) = busy_time /
    completions`` — the measurement window cancels, so callers can pass raw
    totals.
    """
    if completions <= 0:
        raise ConfigurationError("completions must be positive")
    if busy_time < 0:
        raise ConfigurationError("busy time must be non-negative")
    return busy_time / completions


def utilization(throughput: float, demand: float) -> float:
    """Utilization Law: ``U = X * D``."""
    if throughput < 0 or demand < 0:
        raise ConfigurationError("throughput and demand must be non-negative")
    return throughput * demand


def littles_law_population(throughput: float, residence_time: float) -> float:
    """Little's law: mean population ``L = X * R``."""
    if throughput < 0 or residence_time < 0:
        raise ConfigurationError("inputs must be non-negative")
    return throughput * residence_time


def interactive_response_time(
    population: float, throughput: float, think_time: float
) -> float:
    """Interactive response-time law: ``R = N / X - Z``.

    This is how both the single-master model and the simulator convert a
    closed-loop population and throughput into the client-visible response
    time.  The result is clamped at zero to absorb floating-point noise at
    very light loads.
    """
    if throughput <= 0:
        raise ConfigurationError("throughput must be positive")
    if population < 0 or think_time < 0:
        raise ConfigurationError("population and think time must be non-negative")
    return max(0.0, population / throughput - think_time)


def closed_loop_throughput(
    population: float, response_time: float, think_time: float
) -> float:
    """Inverse of the interactive response-time law: ``X = N / (R + Z)``."""
    if population < 0:
        raise ConfigurationError("population must be non-negative")
    denom = response_time + think_time
    if denom <= 0:
        raise ConfigurationError("R + Z must be positive")
    return population / denom
