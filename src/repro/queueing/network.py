"""Closed queueing-network descriptions.

The paper models each database replica as a **closed separable queueing
network** (Figures 1 and 2): the CPU and disk are queueing service centers,
while the client think time, load-balancer/network delay, and certification
latency are delay centers (no queueing).  This module defines the network
vocabulary; :mod:`repro.queueing.mva` solves the networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence

from ..core.errors import ConfigurationError


class CenterKind(Enum):
    """How a center reacts to load."""

    #: A single-server queueing center: residence time grows with the queue.
    QUEUEING = "queueing"
    #: A pure delay (infinite-server) center: residence time is constant.
    DELAY = "delay"


@dataclass(frozen=True)
class Center:
    """One service center with a per-visit service demand (seconds).

    ``demand`` is the *total* service demand of one transaction at this
    center (visit count times per-visit service time), following the
    operational convention of Lazowska et al. [Lazowska 1984].
    """

    name: str
    kind: CenterKind
    demand: float

    def __post_init__(self) -> None:
        if self.demand < 0.0:
            raise ConfigurationError(
                f"center {self.name!r} has negative demand {self.demand}"
            )

    def with_demand(self, demand: float) -> "Center":
        """Return a copy of this center with a different demand."""
        return Center(name=self.name, kind=self.kind, demand=demand)


def queueing_center(name: str, demand: float) -> Center:
    """Convenience constructor for a queueing center."""
    return Center(name=name, kind=CenterKind.QUEUEING, demand=demand)


def delay_center(name: str, demand: float) -> Center:
    """Convenience constructor for a delay center."""
    return Center(name=name, kind=CenterKind.DELAY, demand=demand)


@dataclass(frozen=True)
class ClosedNetwork:
    """A single-class closed network: centers plus a client think time."""

    centers: Sequence[Center]
    think_time: float = 0.0

    def __post_init__(self) -> None:
        if self.think_time < 0.0:
            raise ConfigurationError("think time must be non-negative")
        names = [c.name for c in self.centers]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate center names in {names}")
        if not self.centers:
            raise ConfigurationError("network needs at least one center")

    @property
    def total_demand(self) -> float:
        """Sum of demands over all centers (minimum possible response time)."""
        return sum(c.demand for c in self.centers)

    @property
    def bottleneck(self) -> Center:
        """The queueing center with the largest demand.

        Falls back to the largest delay center for pure-delay networks.
        """
        queueing = [c for c in self.centers if c.kind is CenterKind.QUEUEING]
        pool = queueing if queueing else list(self.centers)
        return max(pool, key=lambda c: c.demand)

    def demands(self) -> Dict[str, float]:
        """Mapping of center name to demand."""
        return {c.name: c.demand for c in self.centers}

    def with_demands(self, demands: Dict[str, float]) -> "ClosedNetwork":
        """Return a copy with the demands of named centers replaced."""
        unknown = set(demands) - {c.name for c in self.centers}
        if unknown:
            raise ConfigurationError(f"unknown centers {sorted(unknown)}")
        centers: List[Center] = [
            c.with_demand(demands.get(c.name, c.demand)) for c in self.centers
        ]
        return ClosedNetwork(centers=centers, think_time=self.think_time)


@dataclass(frozen=True)
class MulticlassNetwork:
    """A closed network with several customer classes.

    ``demands[class_name][center_index]`` gives the demand of that class at
    each center; every class visits the same ordered center list (possibly
    with zero demand).  Each class has its own think time and population.
    """

    centers: Sequence[Center]
    demands: Dict[str, Sequence[float]]
    think_times: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.centers:
            raise ConfigurationError("network needs at least one center")
        names = [c.name for c in self.centers]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate center names in {names}")
        if set(self.demands) != set(self.think_times):
            raise ConfigurationError(
                "demands and think_times must cover the same classes"
            )
        for klass, row in self.demands.items():
            if len(row) != len(self.centers):
                raise ConfigurationError(
                    f"class {klass!r} has {len(row)} demands for "
                    f"{len(self.centers)} centers"
                )
            if any(d < 0.0 for d in row):
                raise ConfigurationError(f"class {klass!r} has a negative demand")
        for klass, z in self.think_times.items():
            if z < 0.0:
                raise ConfigurationError(f"class {klass!r} has a negative think time")

    @property
    def classes(self) -> List[str]:
        """Class names in sorted order (deterministic iteration)."""
        return sorted(self.demands)
