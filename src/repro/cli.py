"""Command-line interface: profile, predict, simulate, and reproduce.

Examples::

    repro workloads
    repro scenarios
    repro profile tpcw/shopping
    repro predict tpcw/shopping --design multi-master --replicas 1 2 4 8 16
    repro simulate tpcw/shopping --design single-master --replicas 8
    repro crossval --workload tpcw --replicas 4
    repro figure fig06 --fast --jobs 4
    repro table table3 --fast
    repro run ablation-lb-policy --fast
    repro autoscale --trace diurnal --fast --jobs 6
    repro scenarios --profile fig06 --fast
    repro validate --fast
    repro reproduce --fast --jobs 8

Every figure/table/ablation is a registered scenario executed by the sweep
engine: ``--jobs N`` fans sweep points out over a process pool (identical
results to serial execution) and completed points are cached on disk
(``--no-cache`` disables; ``$REPRO_CACHE_DIR`` moves the cache), so
interrupted or repeated runs are incremental.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import List, Optional

from . import experiments
from .core.errors import EngineError, ReproError
from .core.rng import DEFAULT_SEED
from .core.units import to_ms
from .engine import (
    UnknownScenarioError,
    UnknownTagError,
    get_scenario,
    point_timings,
    run_scenario,
    scenario_names,
    scenario_names_with_tag,
)
from .models.api import DESIGNS, predict
from .simulator.runner import simulate
from .simulator.systems import LB_POLICIES
from .workloads import get_workload, workload_names

_FIGURE_NAMES = tuple(f"figure{i}" for i in range(6, 15))
_FIGURE_ALIASES = tuple(f"fig{i:02d}" for i in range(6, 15)) + tuple(
    f"fig{i}" for i in range(6, 15)
)
_TABLE_NAMES = ("table2", "table3", "table4", "table5")


def _settings(args) -> experiments.ExperimentSettings:
    settings = (
        experiments.ExperimentSettings.fast()
        if getattr(args, "fast", False)
        else experiments.ExperimentSettings()
    )
    if getattr(args, "audit", False):
        settings = settings.audited()
    if getattr(args, "certifier", None) is not None:
        settings = settings.with_certifier(args.certifier)
    if getattr(args, "capacity_source", None) is not None:
        settings = settings.with_capacity_source(args.capacity_source)
    return settings


def _certifier_arg(value: str) -> str:
    """Validate ``--certifier`` eagerly so typos exit 2 with a hint."""
    from .sidb.certifier_api import UnknownCertifierError, resolve_certifier_spec

    try:
        resolve_certifier_spec(value)
    except UnknownCertifierError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _capacity_source_arg(value: str) -> str:
    """Validate ``--capacity-source`` eagerly so typos exit 2 with a hint."""
    from .control.estimator import resolve_capacity_source
    from .core.errors import ConfigurationError

    try:
        resolve_capacity_source(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return value


def _cache(args) -> object:
    """Disk cache argument for the engine (``--no-cache`` disables)."""
    if getattr(args, "no_cache", False):
        return None
    return "default"


def _jobs(args) -> Optional[int]:
    """--jobs value; ``None`` means one worker per CPU."""
    return getattr(args, "jobs", 1)


def _cmd_workloads(args) -> int:
    for name in workload_names():
        spec = get_workload(name)
        print(f"{name:<18s} Pr={spec.mix.read_fraction:.0%} "
              f"C={spec.clients_per_replica} — {spec.description}")
    return 0


def _cmd_scenarios(args) -> int:
    tag = getattr(args, "tag", None)
    tagged = None
    if tag is not None:
        try:
            tagged = scenario_names_with_tag(tag)
        except UnknownTagError as exc:
            print(f"repro scenarios: {exc}", file=sys.stderr)
            return 2
    if getattr(args, "profile", False):
        try:
            return _profile_scenarios(args, tagged)
        except UnknownScenarioError as exc:
            print(f"repro scenarios: {exc}", file=sys.stderr)
            return 2
    names = getattr(args, "names", None) or tagged or scenario_names()
    for name in names:
        try:
            scenario = get_scenario(name)  # resolves aliases too
        except UnknownScenarioError as exc:
            print(f"repro scenarios: {exc}", file=sys.stderr)
            return 2
        if tagged is not None and scenario.name not in tagged:
            continue  # explicit names restricted by --tag
        aliases = (
            f" (aka {', '.join(scenario.aliases)})" if scenario.aliases else ""
        )
        print(f"{scenario.name:<26s} [{scenario.kind}] "
              f"{scenario.title}{aliases}")
    if not getattr(args, "names", None) and tagged is None:
        print(f"{len(names)} scenarios; run any with: repro run <name> "
              f"(figures/tables also via repro figure | repro table; "
              f"everything via repro reproduce)")
    return 0


def _quantile(ordered: List[float], q: float) -> float:
    """Nearest-rank quantile of an ascending list (0.0 when empty)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def _profile_scenarios(args, tagged=None) -> int:
    """Run the named scenarios and break down per-point wall-clock.

    The sweep runner times every point it executes (and notes cache
    serves); this view aggregates those timings per scenario — the
    p50/p95/max of executed-point seconds — and reports scenarios
    sorted by total wall-clock, slowest first, so contributors see
    exactly where a reproduction's time goes.  *tagged* is the --tag
    selection: it stands in for explicit names, and restricts them
    when both are given.
    """
    if not args.names and tagged is None:
        # Running the whole registry (live-cluster scenarios included, at
        # full settings) from what reads as a listing command would be a
        # multi-hour surprise; make the workload explicit.
        print("repro scenarios --profile: name the scenarios to profile, "
              "e.g.: repro scenarios --profile fig06 table3 --fast",
              file=sys.stderr)
        return 2
    names = args.names or tagged
    if tagged is not None and args.names:
        names = [
            name for name in args.names
            if get_scenario(name).name in tagged
        ]
    settings = _settings(args)
    profiles = []
    for name in names:
        scenario = get_scenario(name)
        started = time.time()
        # run_scenario scopes the timing log to this run.
        run_scenario(scenario, settings, jobs=_jobs(args), cache=_cache(args))
        profiles.append((scenario, time.time() - started, point_timings()))
    # Slowest scenario first: the profile exists to answer "where does
    # the wall-clock go", so lead with the biggest consumer.
    for scenario, elapsed, timings in sorted(profiles, key=lambda p: -p[1]):
        executed = [t for t in timings if not t.cached]
        cached = len(timings) - len(executed)
        busy = sum(t.seconds for t in executed)
        seconds = sorted(t.seconds for t in executed)
        print(f"{scenario.name}: {elapsed:.2f}s wall "
              f"({len(timings)} points: {cached} cached, "
              f"{len(executed)} executed, {busy:.2f}s point work; "
              f"p50 {_quantile(seconds, 0.5):.2f}s "
              f"p95 {_quantile(seconds, 0.95):.2f}s "
              f"max {_quantile(seconds, 1.0):.2f}s per point)")
        for timing in sorted(executed, key=lambda t: -t.seconds)[:8]:
            share = timing.seconds / busy if busy > 0 else 0.0
            print(f"    {timing.seconds:>8.2f}s {share:>5.0%}  "
                  f"{timing.description}")
    grand_total = sum(elapsed for _, elapsed, _ in profiles)
    print(f"total: {grand_total:.2f}s wall across {len(profiles)} "
          f"scenario(s)")
    return 0


def _cmd_profile(args) -> int:
    from .profiling import profile_standalone

    spec = get_workload(args.workload)
    report = profile_standalone(spec, seed=args.seed)
    profile = report.profile
    print(f"workload: {report.workload}")
    print(f"  Pr/Pw measured: {profile.mix.read_fraction:.3f} / "
          f"{profile.mix.write_fraction:.3f}")
    for klass in ("read", "write", "writeset"):
        demand = profile.demands.get(klass)
        print(f"  {klass:<9s} cpu {to_ms(demand.cpu):7.2f} ms   "
              f"disk {to_ms(demand.disk):7.2f} ms")
    print(f"  L(1) = {to_ms(profile.update_response_time):.1f} ms, "
          f"A1 = {profile.abort_rate:.4%}")
    print(f"  standalone: {report.standalone_throughput:.1f} tps @ "
          f"{to_ms(report.standalone_response_time):.0f} ms")
    return 0


def _cmd_predict(args) -> int:
    spec = get_workload(args.workload)
    settings = _settings(args)
    profile = experiments.get_profile(spec, settings)
    print(f"{args.workload} on {args.design} (predicted from standalone profile)")
    print(f"  {'N':>3s} {'throughput':>12s} {'response':>10s} {'aborts':>8s}")
    for n in args.replicas:
        prediction = predict(args.design, profile, spec.replication_config(n))
        print(f"  {n:>3d} {prediction.throughput:>8.1f} tps "
              f"{to_ms(prediction.response_time):>7.1f} ms "
              f"{prediction.abort_rate:>7.3%}")
    return 0


def _cmd_simulate(args) -> int:
    spec = get_workload(args.workload)
    print(f"{args.workload} on {args.design} (discrete-event simulation)")
    print(f"  {'N':>3s} {'throughput':>12s} {'response':>10s} {'aborts':>8s}")
    for n in args.replicas:
        result = simulate(
            spec,
            spec.replication_config(n),
            design=args.design,
            seed=args.seed,
            warmup=args.warmup,
            duration=args.duration,
        )
        print(f"  {n:>3d} {result.throughput:>8.1f} tps "
              f"{to_ms(result.response_time):>7.1f} ms "
              f"{result.abort_rate:>7.3%}")
    return 0


def _telemetry_empty(result) -> bool:
    """True when a run recorded no telemetry at all (or none attached)."""
    if result is None:
        return True
    return not (result.spans or result.events or result.samples)


def _cmd_metrics(args) -> int:
    """One instrumented run (or pillar pair) with exports.

    ``--pillar both`` is the schema-parity check in command form: the
    simulator and the live cluster must emit the same shared metric
    names from the same workload, or the command fails.
    """
    from .cluster import run_cluster
    from .telemetry import TelemetryConfig, render_dashboard
    from .telemetry import export as tel_export
    from .telemetry.schema import SHARED_SCHEMA

    spec = get_workload(args.workload)
    config = spec.replication_config(args.replicas)
    telemetry = TelemetryConfig(
        span_sample_rate=args.span_rate,
        snapshot_interval=args.interval,
        max_spans=args.max_spans,
        span_ring=args.span_ring,
        audit=args.audit,
    )
    pillars = (
        ("simulator", "cluster") if args.pillar == "both"
        else (args.pillar,)
    )
    results = {}
    for pillar in pillars:
        print(f"running {args.workload} on {args.design} "
              f"(N={args.replicas}, {pillar} pillar)...", file=sys.stderr)
        if pillar == "simulator":
            run = simulate(
                spec, config, design=args.design, seed=args.seed,
                warmup=args.warmup, duration=args.duration,
                telemetry=telemetry,
            )
        else:
            run = run_cluster(
                spec, config, design=args.design, seed=args.seed,
                warmup=args.warmup, duration=args.duration,
                time_scale=args.time_scale, telemetry=telemetry,
            )
        results[pillar] = run.telemetry

    if all(_telemetry_empty(result) for result in results.values()):
        print("no telemetry recorded (telemetry disabled?)")
        return 0
    for result in results.values():
        print(render_dashboard(result))
        print()

    code = 0
    for pillar, result in results.items():
        audit = getattr(result, "audit", None)
        if audit is not None and not audit.ok:
            print(f"FAIL: {pillar} pillar audit found "
                  f"{audit.total_violations} invariant violation(s)")
            code = 1
        missing = SHARED_SCHEMA - result.metric_names()
        if missing:
            print(f"FAIL: {pillar} pillar did not emit "
                  f"{', '.join(sorted(missing))}")
            code = 1
    if len(results) == 2 and code == 0:
        live_only = (results["cluster"].metric_names()
                     - results["simulator"].metric_names())
        print(f"schema parity: both pillars emitted all "
              f"{len(SHARED_SCHEMA)} shared metric names"
              + (f" (live adds {', '.join(sorted(live_only))})"
                 if live_only else ""))

    if args.trace_out:
        spans = [(pillar, span)
                 for pillar, result in results.items()
                 for span in result.spans]
        written = tel_export.write_spans_jsonl(args.trace_out, spans)
        print(f"wrote {written} spans to {args.trace_out}")
    if args.chrome_out:
        span_dicts = [tel_export.span_to_dict(span, pillar)
                      for pillar, result in results.items()
                      for span in result.spans]
        tel_export.write_chrome_trace(args.chrome_out, span_dicts)
        print(f"wrote Chrome trace to {args.chrome_out} "
              f"(load via chrome://tracing or ui.perfetto.dev)")
    if args.prom_out:
        with open(args.prom_out, "w", encoding="utf-8") as handle:
            for pillar, result in results.items():
                handle.write(f"# pillar: {pillar}\n")
                handle.write(tel_export.prometheus_text(result.samples))
        print(f"wrote Prometheus text exposition to {args.prom_out}")
    if args.json_out:
        import json

        payload = {
            pillar: {
                "metrics": [
                    {"name": s.name, "kind": s.kind,
                     "labels": dict(s.labels), "value": s.value,
                     "max_value": s.max_value, "sum": s.sum,
                     "count": s.count}
                    for s in result.samples
                ],
                "spans": len(result.spans),
                "spans_dropped": result.spans_dropped,
                "snapshots": len(result.timeline),
                "events": [
                    {"time": e.time, "kind": e.kind,
                     "subject": e.subject, "detail": e.detail}
                    for e in result.events
                ],
            }
            for pillar, result in results.items()
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote metrics JSON to {args.json_out}")
    return code


def _cmd_trace(args) -> int:
    """Causal replication tracing: one instrumented run, analysed.

    Traces every transaction (``--span-rate 1`` by default), links each
    committed writeset's certify span to its per-replica apply spans,
    and prints the critical-path breakdown (certifier queue / channel /
    apply) plus the snapshot-staleness distributions.  ``--audit`` runs
    the online invariant auditor alongside and fails on any violation;
    ``--chrome-out`` exports the multi-track Chrome trace (one track
    per replica plus the shared certifier track).
    """
    from .cluster import run_cluster
    from .telemetry import (
        TelemetryConfig,
        causal_traces,
        critical_path,
        render_critical_path,
        staleness_summary,
        write_causal_chrome_trace,
    )

    spec = get_workload(args.workload)
    config = spec.replication_config(args.replicas)
    telemetry = TelemetryConfig(
        span_sample_rate=args.span_rate,
        snapshot_interval=args.interval,
        max_spans=args.max_spans,
        span_ring=args.span_ring,
        audit=args.audit,
    )
    print(f"tracing {args.workload} on {args.design} "
          f"(N={args.replicas}, {args.pillar} pillar)...", file=sys.stderr)
    if args.pillar == "simulator":
        run = simulate(
            spec, config, design=args.design, seed=args.seed,
            warmup=args.warmup, duration=args.duration,
            telemetry=telemetry,
        )
    else:
        run = run_cluster(
            spec, config, design=args.design, seed=args.seed,
            warmup=args.warmup, duration=args.duration,
            time_scale=args.time_scale, telemetry=telemetry,
        )
    result = run.telemetry
    if _telemetry_empty(result):
        print("no telemetry recorded (telemetry disabled?)")
        return 0

    traces = causal_traces(result)
    committed = sum(1 for trace in traces if trace.committed)
    print(f"causal graph: {len(traces)} traces ({committed} committed), "
          f"{len(result.spans)} spans")
    print(render_critical_path(critical_path(result)))
    staleness = staleness_summary(result)
    if staleness:
        print()
        for line in staleness:
            print(line)
    if result.spans_dropped:
        mode = "oldest evicted" if args.span_ring else "newest discarded"
        print(f"!! SPANS DROPPED: {result.spans_dropped} ({mode}; "
              f"max_spans={args.max_spans})")

    if args.chrome_out:
        write_causal_chrome_trace(args.chrome_out, result)
        print(f"wrote multi-track Chrome trace to {args.chrome_out} "
              f"(load via chrome://tracing or ui.perfetto.dev)")

    audit = getattr(result, "audit", None)
    if audit is not None:
        if audit.ok:
            print(f"audit: PASS — {audit.total_checks} checks, "
                  f"zero invariant violations")
        else:
            print(f"FAIL: audit found {audit.total_violations} "
                  f"invariant violation(s)")
            for violation in audit.violations[:20]:
                print("  " + violation.to_text())
            return 1
    return 0


def _cmd_crossval(args) -> int:
    spec = experiments.resolve_workload(args.workload)
    print(
        f"cross-validating {spec.name} on {args.design} at N={args.replicas} "
        f"(model + simulator + live cluster)...", file=sys.stderr,
    )
    result = experiments.cross_validate(
        spec,
        spec.replication_config(args.replicas),
        design=args.design,
        seed=args.seed,
        sim_warmup=args.sim_warmup,
        sim_duration=args.sim_duration,
        cluster_warmup=args.warmup,
        cluster_duration=args.duration,
        time_scale=args.time_scale,
        lb_policy=args.lb_policy,
        jobs=_jobs(args),
    )
    print(result.to_text())
    if not result.state_converged:
        print("FAIL: live replicas did not converge to identical state")
        return 1
    return 0


def _render_artifact(result) -> str:
    """Render any scenario artifact (ablation rows have no ``to_text``)."""
    if hasattr(result, "to_text"):
        return result.to_text()
    if isinstance(result, (list, tuple)):
        return "\n".join(str(row) for row in result)
    return str(result)


def _entry_label(entry) -> str:
    """Best-effort label for one artifact entry in failure lines."""
    return " ".join(
        str(part) for part in (getattr(entry, "design", ""),
                               getattr(entry, "policy", ""),
                               getattr(entry, "label", ""))
        if part
    ) or repr(entry)


def _audit_failure(label: str, obj) -> Optional[str]:
    """One FAIL line when *obj* carries a failed audit report."""
    telemetry = getattr(obj, "telemetry", None)
    audit = getattr(telemetry, "audit", None)
    if audit is None or audit.ok:
        return None
    worst = "; ".join(v.to_text() for v in audit.violations[:3])
    return (f"{label}: {audit.total_violations} audit violation(s) "
            f"[{worst}]")


def _artifact_failures(result) -> List[str]:
    """Correctness failures an artifact may carry.

    Cluster-backed artifacts (autoscale comparisons, crossval results)
    record whether the live replicas converged to identical state; a
    non-converged entry must fail the command, not exit 0 behind a
    pretty table.  Audited runs (``--audit``) additionally attach an
    :class:`repro.audit.AuditReport` to each result's telemetry — any
    invariant violation fails the command the same way.
    """
    failures = []
    if getattr(result, "converged", True) is False:
        failures.append("artifact did not converge")
    audited = [("artifact", result)]
    for entry in getattr(result, "results", None) or ():
        if getattr(entry, "converged", True) is False:
            failures.append(f"{_entry_label(entry)} did not converge")
        audited.append((_entry_label(entry), entry))
        inner = getattr(entry, "result", None)
        if inner is not None:
            audited.append((_entry_label(entry), inner))
    for row in getattr(result, "rows", None) or ():
        for attr in ("sim_full", "sim_partial"):
            cell = getattr(row, attr, None)
            if cell is not None:
                audited.append(
                    (f"Pw={getattr(row, 'write_fraction', '?')} {attr}",
                     cell)
                )
    for label, obj in audited:
        failure = _audit_failure(label, obj)
        if failure is not None:
            failures.append(failure)
    return failures


def _run_registered(args, name: str, after_render=None) -> int:
    scenario = get_scenario(name)
    started = time.time()
    try:
        result = run_scenario(
            scenario,
            _settings(args),
            jobs=_jobs(args),
            cache=_cache(args),
            progress=lambda line: print(f"[{scenario.name}] {line}",
                                        file=sys.stderr),
        )
    except (EngineError, ReproError) as exc:
        # A backend that cannot produce the point — most commonly a
        # live-cluster cell that failed to converge or drain — must fail
        # the command with one readable line, not a traceback (CI smoke
        # jobs grep stderr, not stack frames).
        lines = str(exc).strip().splitlines()
        message = lines[-1] if lines else repr(exc)
        print(f"repro: [{scenario.name}] error: {message}", file=sys.stderr)
        return 1
    print(_render_artifact(result))
    if after_render is not None:
        after_render(result)
    print(f"[{scenario.name}] {time.time() - started:.1f}s wall-clock",
          file=sys.stderr)
    failures = _artifact_failures(result)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


def _cmd_figure(args) -> int:
    return _run_registered(args, args.name)


def _cmd_table(args) -> int:
    return _run_registered(args, args.name)


def _cmd_run(args) -> int:
    try:
        return _run_registered(args, args.name)
    except UnknownScenarioError as exc:
        print(f"repro run: {exc}", file=sys.stderr)
        return 2


def _cmd_autoscale(args) -> int:
    from .control.autoscale import render_timeline

    def print_timelines(comparison) -> None:
        for result in comparison.results:
            print()
            print(render_timeline(result))

    names = [f"autoscale-{args.trace}"]
    if args.live:
        names.append("autoscale-diurnal-live")
    code = 0
    for name in names:
        code = max(code, _run_registered(
            args, name,
            after_render=print_timelines if args.timeline else None,
        ))
    return code


def _cmd_ops(args) -> int:
    from .control.autoscale import render_timeline
    from .ops.scenarios import LIVE_SCENARIOS, SIM_SCENARIOS

    by_operation = {
        "selfheal": ("selfheal-crashstorm", "selfheal-crashstorm-live"),
        "rolling": ("rolling-upgrade", "rolling-upgrade-live"),
        "hetero": ("hetero-fleet", "hetero-fleet-live"),
        "brownout": ("brownout-detection", "brownout-detection-live"),
        "capest": ("capacity-estimation", "capacity-estimation-live"),
        "all": (SIM_SCENARIOS, LIVE_SCENARIOS),
    }
    if args.operation == "all":
        sim_names, live_names = by_operation["all"]
        names = list(sim_names) + (list(live_names) if args.live else [])
    else:
        sim_name, live_name = by_operation[args.operation]
        names = [sim_name] + ([live_name] if args.live else [])

    def print_detail(artifact) -> None:
        for entry in getattr(artifact, "results", ()) or ():
            result = getattr(entry, "result", None)
            if result is None:
                continue
            print()
            print(render_timeline(result))

    code = 0
    for name in names:
        code = max(code, _run_registered(
            args, name,
            after_render=print_detail if args.timeline else None,
        ))
    return code


def _cmd_perf(args) -> int:
    from .control.autoscale import render_timeline

    def print_report(artifact) -> None:
        for result in getattr(artifact, "results", ()) or ():
            perf = getattr(result, "perf", None)
            if perf is None:
                continue
            print()
            print(perf.to_text())
            if args.timeline:
                print()
                print(render_timeline(result))

    names = ["capacity-estimation"]
    if args.live:
        names.append("capacity-estimation-live")
    code = 0
    for name in names:
        code = max(code, _run_registered(
            args, name, after_render=print_report,
        ))
    return code


def _cmd_partition(args) -> int:
    from .partition.scenarios import LIVE_SCENARIOS, SIM_SCENARIOS

    # SIM_SCENARIOS and LIVE_SCENARIOS are aligned pairwise: the n-th
    # live scenario validates the n-th simulator one.
    families = dict(zip(("sweep", "placement", "certifier"),
                        zip(SIM_SCENARIOS, LIVE_SCENARIOS)))
    if args.family == "all":
        names = list(SIM_SCENARIOS) + (
            list(LIVE_SCENARIOS) if args.live else []
        )
    else:
        sim_name, live_name = families[args.family]
        names = [sim_name] + ([live_name] if args.live else [])

    code = 0
    for name in names:
        code = max(code, _run_registered(args, name))
    return code


def _cmd_reproduce(args) -> int:
    settings = _settings(args)
    try:
        report = experiments.full_report(
            settings,
            progress=lambda line: print(line, file=sys.stderr),
            jobs=_jobs(args),
            cache=_cache(args),
        )
    except (EngineError, ReproError) as exc:
        # A sweep point failing inside a worker must fail the whole
        # reproduction run, not leave a half-written report behind.
        print(f"reproduce failed: {exc}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_plan(args) -> int:
    from .models.planning import plan_deployment, plan_mixed_fleet

    spec = get_workload(args.workload)
    settings = _settings(args)
    profile = experiments.get_profile(spec, settings)
    if args.capacities:
        # Mixed-fleet sizing: pick machines from a heterogeneous
        # inventory instead of counting identical replicas.
        plan = plan_mixed_fleet(
            profile,
            spec.replication_config(1),
            target_throughput=args.target,
            capacities=args.capacities,
            max_response_time=args.max_response,
            headroom=args.headroom,
        )
        if plan is None:
            print(f"the inventory cannot serve {args.target:.0f} tps"
                  + (f" at <= {args.max_response*1000:.0f} ms"
                     if args.max_response else ""))
            return 1
        print(f"{args.workload}: {plan.to_text()}")
        return 0
    plan = plan_deployment(
        profile,
        spec.replication_config(1),
        target_throughput=args.target,
        max_response_time=args.max_response,
        headroom=args.headroom,
    )
    if plan is None:
        print(f"no deployment meets {args.target:.0f} tps"
              + (f" at <= {args.max_response*1000:.0f} ms"
                 if args.max_response else ""))
        return 1
    print(f"{args.workload}: {plan.design} with {plan.replicas} replicas")
    print(f"  predicted {plan.predicted_throughput:.1f} tps at "
          f"{to_ms(plan.predicted_response_time):.0f} ms "
          f"(load factor {plan.load_factor:.0%})")
    return 0


def _cmd_validate(args) -> int:
    settings = _settings(args)
    result = experiments.error_margin(
        settings, jobs=_jobs(args), cache=_cache(args)
    )
    print(result.to_text())
    threshold = 0.15
    if result.mean_throughput_error <= threshold:
        print(f"PASS: mean error {result.mean_throughput_error:.1%} <= "
              f"{threshold:.0%} (paper's claim)")
        return 0
    print(f"FAIL: mean error {result.mean_throughput_error:.1%} > {threshold:.0%}")
    return 1


def _add_engine_options(parser: argparse.ArgumentParser,
                        default_jobs: Optional[int] = 1) -> None:
    """--jobs / --no-cache, shared by every engine-driven command."""
    parser.add_argument(
        "--jobs", type=int, default=default_jobs,
        help="worker processes for the sweep (default: "
        + ("one per CPU" if default_jobs is None else str(default_jobs))
        + "); results are identical to serial runs",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="run every executable point with telemetry and the online "
        "invariant auditor attached; any violation fails the command",
    )
    parser.add_argument(
        "--certifier", type=_certifier_arg, default=None,
        metavar="{global,sharded}",
        help="certification protocol for multi-master points: 'global' "
        "(the default single sequencer; byte-identical results and "
        "cache keys to omitting the flag) or 'sharded' (per-partition "
        "certifier shards with distributed cross-partition commit)",
    )
    parser.add_argument(
        "--capacity-source", type=_capacity_source_arg, default=None,
        metavar="{declared,estimated}",
        help="where autoscale points take per-replica capacities from: "
        "'declared' (the configured multipliers; byte-identical results "
        "and cache keys to omitting the flag) or 'estimated' (the online "
        "capacity estimator's live values drive the LB weights and the "
        "controller's target)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predict replicated-database scalability from standalone "
        "profiling (EuroSys 2009 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list built-in workloads").set_defaults(
        func=_cmd_workloads
    )

    p = sub.add_parser(
        "scenarios",
        help="list every registered scenario (--profile: run and show "
        "per-point wall-clock)",
    )
    p.add_argument("names", nargs="*",
                   help="restrict to these scenarios (names or aliases)")
    p.add_argument("--tag", default=None,
                   help="list only scenarios carrying this tag (a kind "
                   "like figure|ablation|autoscale|ops|partition, or an "
                   "extra tag like live)")
    p.add_argument("--profile", action="store_true",
                   help="EXECUTE the selected scenarios (explicit names, "
                   "or a whole --tag family — live cells included, so "
                   "consider --fast) and report where the wall-clock "
                   "goes, point by point")
    p.add_argument("--fast", action="store_true",
                   help="with --profile: use fast experiment settings")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("profile", help="profile a workload on the standalone sim")
    p.add_argument("workload")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("predict", help="predict replicated performance")
    p.add_argument("workload")
    p.add_argument("--design", choices=DESIGNS, default="multi-master")
    p.add_argument("--replicas", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    p.add_argument("--fast", action="store_true",
                   help="use fast profiling settings")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("simulate", help="measure replicated performance")
    p.add_argument("workload")
    p.add_argument("--design",
                   choices=("standalone",) + tuple(DESIGNS),
                   default="multi-master")
    p.add_argument("--replicas", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--warmup", type=float, default=10.0)
    p.add_argument("--duration", type=float, default=60.0)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "metrics",
        help="run one instrumented point and show the telemetry "
        "dashboard (spans, metrics, timeline; exportable)",
    )
    p.add_argument("--workload", default="tpcw/shopping")
    p.add_argument("--design", choices=DESIGNS, default="multi-master")
    p.add_argument("--pillar", choices=("simulator", "cluster", "both"),
                   default="simulator",
                   help="execution pillar; 'both' also checks that the "
                   "two pillars emit the same shared metric schema")
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--warmup", type=float, default=5.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--time-scale", type=float, default=0.1,
                   help="wall seconds per virtual second (cluster pillar)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="timeline snapshot interval (virtual seconds)")
    p.add_argument("--span-rate", type=float, default=0.1,
                   help="fraction of transactions traced as spans (0-1)")
    p.add_argument("--max-spans", type=int, default=50_000,
                   help="retained-span cap (drops are counted loudly)")
    p.add_argument("--span-ring", action="store_true",
                   help="ring-buffer span retention: keep the latest "
                   "max-spans spans instead of the first")
    p.add_argument("--audit", action="store_true",
                   help="run the online invariant auditor alongside; "
                   "any violation fails the command")
    p.add_argument("--trace-out", default=None,
                   help="write sampled spans to this JSONL file")
    p.add_argument("--chrome-out", default=None,
                   help="write a Chrome-trace JSON conversion of the spans")
    p.add_argument("--prom-out", default=None,
                   help="write metrics in Prometheus text format")
    p.add_argument("--json-out", default=None,
                   help="write the full metric/event payload as JSON")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="causal replication tracing: critical-path breakdown of "
        "one instrumented run (optionally audited)",
    )
    p.add_argument("--workload", default="tpcw/shopping")
    p.add_argument("--design", choices=DESIGNS, default="multi-master")
    p.add_argument("--pillar", choices=("simulator", "cluster"),
                   default="simulator")
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--warmup", type=float, default=5.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--time-scale", type=float, default=0.1,
                   help="wall seconds per virtual second (cluster pillar)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="timeline snapshot interval (virtual seconds)")
    p.add_argument("--span-rate", type=float, default=1.0,
                   help="fraction of transactions traced (default: all, "
                   "so the causal graph is complete)")
    p.add_argument("--max-spans", type=int, default=50_000,
                   help="retained-span cap (drops are counted loudly)")
    p.add_argument("--span-ring", action="store_true",
                   help="ring-buffer span retention: keep the latest "
                   "max-spans spans instead of the first")
    p.add_argument("--audit", action="store_true",
                   help="run the online invariant auditor alongside; "
                   "any violation fails the command")
    p.add_argument("--chrome-out", default=None,
                   help="write the multi-track causal Chrome trace "
                   "(one track per replica) to this JSON file")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "crossval",
        help="cross-validate model, simulator, and live cluster on one point",
    )
    p.add_argument("--workload", default="tpcw",
                   help="workload name; bare benchmark names pick the "
                   "primary mix (tpcw -> tpcw/shopping)")
    p.add_argument("--design", choices=DESIGNS, default="multi-master")
    p.add_argument("--replicas", type=int, default=4)
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument("--warmup", type=float, default=5.0,
                   help="live-cluster warm-up (virtual seconds)")
    p.add_argument("--duration", type=float, default=20.0,
                   help="live-cluster measurement window (virtual seconds)")
    p.add_argument("--sim-warmup", type=float, default=10.0)
    p.add_argument("--sim-duration", type=float, default=40.0)
    p.add_argument("--time-scale", type=float, default=0.1,
                   help="wall seconds per virtual second in the live cluster")
    p.add_argument("--lb-policy", choices=LB_POLICIES, default="least-loaded")
    p.add_argument("--jobs", type=int, default=1,
                   help="run the three pillars concurrently with --jobs 3")
    p.set_defaults(func=_cmd_crossval)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("name",
                   choices=sorted(set(_FIGURE_NAMES + _FIGURE_ALIASES)))
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "run", help="run any registered scenario (see: repro scenarios)"
    )
    p.add_argument("name", help="scenario name or alias from the registry")
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("name", choices=sorted(_TABLE_NAMES))
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("validate", help="check the <=15%% error-margin claim")
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "reproduce", help="regenerate every table and figure into one report"
    )
    p.add_argument("--fast", action="store_true")
    p.add_argument("--out", default=None, help="write the report to a file")
    _add_engine_options(p, default_jobs=None)
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser(
        "autoscale",
        help="compare autoscaling policies (feedforward/reactive/static) "
        "on a load trace",
    )
    p.add_argument("--trace", choices=("diurnal", "flashcrowd"),
                   default="diurnal", help="registered trace scenario to run")
    p.add_argument("--live", action="store_true",
                   help="also run the live-cluster validation scenario "
                   "(elastic membership on real threads)")
    p.add_argument("--timeline", action="store_true",
                   help="print each run's per-interval timeline")
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_autoscale)

    p = sub.add_parser(
        "ops",
        help="run the self-healing operations scenarios (failure "
        "replacement, rolling upgrades, heterogeneous fleets)",
    )
    p.add_argument("--operation",
                   choices=("selfheal", "rolling", "hetero", "brownout",
                            "capest", "all"),
                   default="all", help="which operations family to run")
    p.add_argument("--live", action="store_true",
                   help="also run the live-cluster validation cells "
                   "(real threads, real membership)")
    p.add_argument("--timeline", action="store_true",
                   help="print per-interval timelines and the ops event "
                   "log of every run")
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_ops)

    p = sub.add_parser(
        "perf",
        help="performance observability: online capacity estimation, "
        "model-drift detection, and gray-failure diagnosis under a "
        "brownout",
    )
    p.add_argument("--live", action="store_true",
                   help="also run the live-cluster validation cell "
                   "(brownout on real threads)")
    p.add_argument("--timeline", action="store_true",
                   help="print each instrumented run's per-interval "
                   "timeline")
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser(
        "partition",
        help="run the partial-replication scenarios (partitioned "
        "placement, per-partition certification, placement planning)",
    )
    p.add_argument("--family",
                   choices=("sweep", "placement", "certifier", "all"),
                   default="all", help="which scenario family to run")
    p.add_argument("--live", action="store_true",
                   help="also run the live-cluster validation cells "
                   "(scoped propagation on real threads)")
    p.add_argument("--fast", action="store_true")
    _add_engine_options(p)
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser("plan", help="size a deployment for a target load")
    p.add_argument("workload")
    p.add_argument("--target", type=float, required=True,
                   help="target throughput (tps)")
    p.add_argument("--max-response", type=float, default=None,
                   help="latency SLA in seconds")
    p.add_argument("--headroom", type=float, default=0.1)
    p.add_argument("--capacities", type=float, nargs="+", default=None,
                   help="size a heterogeneous fleet from this machine "
                   "inventory (speed multipliers, e.g. 2 1 1 0.5)")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_plan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
