"""Registry of all built-in workload specifications."""

from __future__ import annotations

from typing import Dict, List

from . import rubis, tpcw
from .spec import WorkloadSpec


def all_workloads() -> Dict[str, WorkloadSpec]:
    """Every built-in workload keyed by its qualified name."""
    catalog: Dict[str, WorkloadSpec] = {}
    for spec in list(tpcw.MIXES.values()) + list(rubis.MIXES.values()):
        catalog[spec.name] = spec
    return catalog


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by qualified name, e.g. ``tpcw/shopping``.

    Also accepts ``benchmark mix`` split across a space or colon.
    """
    normalised = name.replace(":", "/").replace(" ", "/")
    catalog = all_workloads()
    if normalised in catalog:
        return catalog[normalised]
    raise KeyError(
        f"unknown workload {name!r}; choose from {sorted(catalog)}"
    )


def workload_names() -> List[str]:
    """Sorted qualified names of all built-in workloads."""
    return sorted(all_workloads())
