"""RUBiS workload mixes (Tables 4 and 5 of the paper).

RUBiS [Amza 2002] models an auction site like eBay.  The browsing mix is
entirely read-only; the bidding mix has 20% update transactions.  RUBiS
updates are disk-heavy: they enforce integrity constraints and maintain
indexes, so the cost of applying a propagated writeset (35.28 ms of disk)
is only slightly below the full update cost — which is exactly why the
bidding mix peaks at ~6 replicas on the multi-master system (Figure 10).

Scale: 1M users, 10,000 active items, 500,000 old items (2.2 GB database).
Bids target active items, so the conflict footprint is ``U = 2`` uniform
updates over ``DbUpdateSize = 10,000`` active-item rows.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.params import ConflictProfile, WorkloadMix
from .spec import WorkloadSpec, demands_ms

# Bids update an item row and insert bid/comment rows (inserts never
# conflict); the conflicting updates spread over the active items and the
# user tables, keeping the standalone abort rate well below 0.1%.
_CONFLICT = ConflictProfile(db_update_size=40_000, updates_per_transaction=2)

#: Average propagated writeset size (§6.1).
WRITESET_BYTES = 272

#: Database size (§6.1).
DATABASE_SIZE_MB = 2200.0

BROWSING = WorkloadSpec(
    benchmark="rubis",
    mix_name="browsing",
    mix=WorkloadMix(read_fraction=1.0, write_fraction=0.0),
    demands=demands_ms(read_cpu=25.29, read_disk=11.36),
    clients_per_replica=50,
    think_time=1.0,
    conflict=None,
    writeset_bytes=0,
    database_size_mb=DATABASE_SIZE_MB,
    description="RUBiS browsing mix: 100% read-only, linear scalability",
)

BIDDING = WorkloadSpec(
    benchmark="rubis",
    mix_name="bidding",
    mix=WorkloadMix(read_fraction=0.80, write_fraction=0.20),
    demands=demands_ms(
        read_cpu=25.29, read_disk=11.36,
        write_cpu=41.51, write_disk=48.61,
        writeset_cpu=9.83, writeset_disk=35.28,
    ),
    clients_per_replica=50,
    think_time=1.0,
    conflict=_CONFLICT,
    writeset_bytes=WRITESET_BYTES,
    database_size_mb=DATABASE_SIZE_MB,
    description=(
        "RUBiS bidding mix: 20% updates with expensive writeset application "
        "(index maintenance), peaks near 6 replicas on multi-master"
    ),
)

#: All RUBiS mixes keyed by name, in paper order.
MIXES: Dict[str, WorkloadSpec] = {
    "browsing": BROWSING,
    "bidding": BIDDING,
}


def mix_names() -> Tuple[str, ...]:
    """The RUBiS mix names in paper order."""
    return tuple(MIXES)


def get_mix(name: str) -> WorkloadSpec:
    """Look up a RUBiS mix by name (raises KeyError with choices listed)."""
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown RUBiS mix {name!r}; choose from {sorted(MIXES)}"
        ) from None
