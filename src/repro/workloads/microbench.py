"""The heap-table microbenchmark of §6.3.3 (Figure 14).

The paper raises the abort rate artificially: a replicated in-memory heap
table is added to TPC-W shopping, every update transaction also updates a
randomly selected row, and the abort probability is controlled through the
number of rows.  A1 takes the values 0.24%, 0.53% and 0.90%, giving measured
multi-master abort rates at 16 replicas of roughly 10%, 17% and 29%.

We reproduce the construction directly: starting from the TPC-W shopping
spec, we shrink ``DbUpdateSize`` until the *standalone* run exhibits the
target A1 (the inverse abort formula gives the analytic seed; the simulator
confirms the measured value).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.params import ConflictProfile
from ..models.aborts import db_update_size_for_abort_rate
from .spec import WorkloadSpec
from .tpcw import SHOPPING

#: The standalone abort rates studied in Figure 14.
FIGURE14_ABORT_RATES: Tuple[float, ...] = (0.0024, 0.0053, 0.0090)


def heap_table_spec(
    target_a1: float,
    update_response_time: float,
    update_rate: float,
    base: WorkloadSpec = SHOPPING,
) -> WorkloadSpec:
    """Derive a high-conflict variant of *base* targeting abort rate A1.

    ``update_response_time`` (L(1), seconds) and ``update_rate`` (W,
    committed update transactions/second) describe the standalone operating
    point the abort rate is calibrated against — in the paper these come
    from the standalone measurement run.
    """
    if base.conflict is None:
        raise ConfigurationError("base workload must have update transactions")
    size = db_update_size_for_abort_rate(
        target_a1=target_a1,
        updates_per_transaction=base.conflict.updates_per_transaction,
        update_response_time=update_response_time,
        update_rate=update_rate,
    )
    conflict = ConflictProfile(
        db_update_size=size,
        updates_per_transaction=base.conflict.updates_per_transaction,
    )
    label = f"heap-a1-{target_a1:.4f}"
    return base.with_conflict(conflict).with_mix_name(label)


def figure14_specs(
    update_response_time: float,
    update_rate: float,
    abort_rates: Sequence[float] = FIGURE14_ABORT_RATES,
    base: WorkloadSpec = SHOPPING,
) -> Tuple[WorkloadSpec, ...]:
    """The three Figure 14 workloads, calibrated at the given operating point."""
    return tuple(
        heap_table_spec(a1, update_response_time, update_rate, base=base)
        for a1 in abort_rates
    )
