"""Workload specifications.

A :class:`WorkloadSpec` bundles everything the simulator and the models need
to know about a benchmark mix: the transaction fractions (Table 2/4 of the
paper), the *ground-truth* mean service demands the simulated database
exhibits (Table 3/5), the conflict footprint of update transactions, and
the closed-loop client settings.

The ground-truth demands parameterise the **simulator**.  The analytical
models never see them directly — they consume a
:class:`~repro.core.params.StandaloneProfile` measured by the profiler on a
standalone simulated run, mirroring the paper's methodology.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError
from ..core.params import (
    ConflictProfile,
    ReplicationConfig,
    ResourceDemand,
    ServiceDemands,
    StandaloneProfile,
    WorkloadMix,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """A benchmark workload mix, fully parameterised."""

    #: Benchmark name, e.g. ``"tpcw"``.
    benchmark: str
    #: Mix name, e.g. ``"shopping"``.
    mix_name: str
    #: Pr / Pw fractions (Table 2 / Table 4).
    mix: WorkloadMix
    #: Ground-truth mean service demands (Table 3 / Table 5), seconds.
    demands: ServiceDemands
    #: C — closed-loop clients per replica (Table 2 / Table 4).
    clients_per_replica: int
    #: Z — effective think time in seconds (the paper uses 1.0 s).
    think_time: float
    #: Conflict footprint of update transactions (DbUpdateSize, U).
    conflict: Optional[ConflictProfile] = None
    #: Average propagated writeset size in bytes (§6.1).
    writeset_bytes: int = 0
    #: Database size in MB (documentation / §6.1 reporting only).
    database_size_mb: float = 0.0
    description: str = ""
    #: Data partitions the workload addresses (1 = unpartitioned, the
    #: paper's full-replication setting).  Partitioned workloads split the
    #: updatable set evenly: each partition owns
    #: ``DbUpdateSize // partitions`` rows.
    partitions: int = 1
    #: Fraction of update transactions touching a second (co-located)
    #: partition — the tunable cost knob of partial replication.
    cross_partition_fraction: float = 0.0
    #: Relative partition popularity (uniform when ``None``); drives both
    #: the sampler and weight-balanced placement planning.
    partition_weights: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.clients_per_replica < 1:
            raise ConfigurationError("clients_per_replica must be >= 1")
        if self.think_time < 0:
            raise ConfigurationError("think time must be non-negative")
        if self.mix.write_fraction > 0.0 and self.conflict is None:
            raise ConfigurationError(
                f"{self.name}: update mixes need a ConflictProfile"
            )
        if self.partitions < 1:
            raise ConfigurationError("partitions must be >= 1")
        if not 0.0 <= self.cross_partition_fraction <= 1.0:
            raise ConfigurationError(
                "cross-partition fraction must be in [0, 1]"
            )
        if self.cross_partition_fraction > 0.0 and self.partitions < 2:
            raise ConfigurationError(
                "cross-partition transactions need at least 2 partitions"
            )
        if (
            self.cross_partition_fraction > 0.0
            and self.conflict is not None
            and self.conflict.updates_per_transaction < 2
        ):
            # A cross-partition update must write at least one row in
            # each touched partition, or its footprint silently collapses
            # to one partition while routing and the model charge both.
            raise ConfigurationError(
                f"{self.name}: cross-partition updates need U >= 2 "
                f"(one row per touched partition), got "
                f"U={self.conflict.updates_per_transaction}"
            )
        if self.partitions > 1 and self.conflict is not None:
            per_partition = self.conflict.db_update_size // self.partitions
            if per_partition < self.conflict.updates_per_transaction:
                raise ConfigurationError(
                    f"{self.name}: {self.partitions} partitions leave only "
                    f"{per_partition} rows per partition, fewer than "
                    f"U={self.conflict.updates_per_transaction}"
                )
        if self.partition_weights is not None:
            if len(self.partition_weights) != self.partitions:
                raise ConfigurationError(
                    f"{self.name}: {len(self.partition_weights)} partition "
                    f"weights for {self.partitions} partitions"
                )
            if any(w <= 0.0 for w in self.partition_weights):
                raise ConfigurationError(
                    "every partition weight must be positive"
                )

    @property
    def name(self) -> str:
        """Fully qualified name, e.g. ``tpcw/shopping``."""
        return f"{self.benchmark}/{self.mix_name}"

    @property
    def has_updates(self) -> bool:
        """True when the mix contains update transactions."""
        return self.mix.write_fraction > 0.0

    @property
    def partitioned(self) -> bool:
        """True when the workload addresses more than one partition."""
        return self.partitions > 1

    def replication_config(
        self,
        replicas: int,
        load_balancer_delay: float = 0.001,
        certifier_delay: float = 0.012,
    ) -> ReplicationConfig:
        """Deployment configuration for this workload at *replicas* replicas."""
        return ReplicationConfig(
            replicas=replicas,
            clients_per_replica=self.clients_per_replica,
            think_time=self.think_time,
            load_balancer_delay=load_balancer_delay,
            certifier_delay=certifier_delay,
        )

    def ground_truth_profile(
        self, abort_rate: float = 0.0, update_response_time: Optional[float] = None
    ) -> StandaloneProfile:
        """A profile built from the ground-truth demands.

        Useful for tests that want to bypass the measurement step; real
        experiments use :func:`repro.profiling.profile_standalone` instead.
        ``update_response_time`` defaults to the zero-load update latency
        (wc summed over resources), a lower bound on L(1).
        """
        if update_response_time is None:
            update_response_time = self.demands.write.total
        if not self.has_updates:
            update_response_time = 0.0
        return StandaloneProfile(
            mix=self.mix,
            demands=self.demands,
            abort_rate=abort_rate,
            update_response_time=update_response_time,
        )

    def with_conflict(self, conflict: ConflictProfile) -> "WorkloadSpec":
        """Return a copy with a different conflict footprint (Figure 14)."""
        return dataclasses.replace(self, conflict=conflict)

    def with_mix_name(self, mix_name: str) -> "WorkloadSpec":
        """Return a copy renamed (used by derived microbenchmarks)."""
        return dataclasses.replace(self, mix_name=mix_name)

    def with_demands(self, demands: ServiceDemands) -> "WorkloadSpec":
        """Return a copy with different ground-truth demands (ablations)."""
        return dataclasses.replace(self, demands=demands)

    def with_partitions(
        self,
        partitions: int,
        cross_partition_fraction: float = 0.0,
        partition_weights: Optional[tuple] = None,
    ) -> "WorkloadSpec":
        """Return a partitioned copy (renamed so cache keys never collide).

        The updatable set splits evenly over the partitions; update
        transactions touch a second, co-located partition with probability
        *cross_partition_fraction*.
        """
        renamed = f"{self.mix_name}-p{partitions}"
        if cross_partition_fraction > 0.0:
            renamed += f"-x{cross_partition_fraction:g}"
        return dataclasses.replace(
            self,
            mix_name=renamed,
            partitions=partitions,
            cross_partition_fraction=cross_partition_fraction,
            partition_weights=(
                None if partition_weights is None
                else tuple(partition_weights)
            ),
        )


def demands_ms(
    read_cpu: float,
    read_disk: float,
    write_cpu: float = 0.0,
    write_disk: float = 0.0,
    writeset_cpu: float = 0.0,
    writeset_disk: float = 0.0,
) -> ServiceDemands:
    """Build :class:`ServiceDemands` from millisecond values (Tables 3/5)."""
    from ..core.units import ms

    return ServiceDemands(
        read=ResourceDemand(cpu=ms(read_cpu), disk=ms(read_disk)),
        write=ResourceDemand(cpu=ms(write_cpu), disk=ms(write_disk)),
        writeset=ResourceDemand(cpu=ms(writeset_cpu), disk=ms(writeset_disk)),
    )
