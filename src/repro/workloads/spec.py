"""Workload specifications.

A :class:`WorkloadSpec` bundles everything the simulator and the models need
to know about a benchmark mix: the transaction fractions (Table 2/4 of the
paper), the *ground-truth* mean service demands the simulated database
exhibits (Table 3/5), the conflict footprint of update transactions, and
the closed-loop client settings.

The ground-truth demands parameterise the **simulator**.  The analytical
models never see them directly — they consume a
:class:`~repro.core.params.StandaloneProfile` measured by the profiler on a
standalone simulated run, mirroring the paper's methodology.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError
from ..core.params import (
    ConflictProfile,
    ReplicationConfig,
    ResourceDemand,
    ServiceDemands,
    StandaloneProfile,
    WorkloadMix,
)


@dataclass(frozen=True)
class WorkloadSpec:
    """A benchmark workload mix, fully parameterised."""

    #: Benchmark name, e.g. ``"tpcw"``.
    benchmark: str
    #: Mix name, e.g. ``"shopping"``.
    mix_name: str
    #: Pr / Pw fractions (Table 2 / Table 4).
    mix: WorkloadMix
    #: Ground-truth mean service demands (Table 3 / Table 5), seconds.
    demands: ServiceDemands
    #: C — closed-loop clients per replica (Table 2 / Table 4).
    clients_per_replica: int
    #: Z — effective think time in seconds (the paper uses 1.0 s).
    think_time: float
    #: Conflict footprint of update transactions (DbUpdateSize, U).
    conflict: Optional[ConflictProfile] = None
    #: Average propagated writeset size in bytes (§6.1).
    writeset_bytes: int = 0
    #: Database size in MB (documentation / §6.1 reporting only).
    database_size_mb: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        if self.clients_per_replica < 1:
            raise ConfigurationError("clients_per_replica must be >= 1")
        if self.think_time < 0:
            raise ConfigurationError("think time must be non-negative")
        if self.mix.write_fraction > 0.0 and self.conflict is None:
            raise ConfigurationError(
                f"{self.name}: update mixes need a ConflictProfile"
            )

    @property
    def name(self) -> str:
        """Fully qualified name, e.g. ``tpcw/shopping``."""
        return f"{self.benchmark}/{self.mix_name}"

    @property
    def has_updates(self) -> bool:
        """True when the mix contains update transactions."""
        return self.mix.write_fraction > 0.0

    def replication_config(
        self,
        replicas: int,
        load_balancer_delay: float = 0.001,
        certifier_delay: float = 0.012,
    ) -> ReplicationConfig:
        """Deployment configuration for this workload at *replicas* replicas."""
        return ReplicationConfig(
            replicas=replicas,
            clients_per_replica=self.clients_per_replica,
            think_time=self.think_time,
            load_balancer_delay=load_balancer_delay,
            certifier_delay=certifier_delay,
        )

    def ground_truth_profile(
        self, abort_rate: float = 0.0, update_response_time: Optional[float] = None
    ) -> StandaloneProfile:
        """A profile built from the ground-truth demands.

        Useful for tests that want to bypass the measurement step; real
        experiments use :func:`repro.profiling.profile_standalone` instead.
        ``update_response_time`` defaults to the zero-load update latency
        (wc summed over resources), a lower bound on L(1).
        """
        if update_response_time is None:
            update_response_time = self.demands.write.total
        if not self.has_updates:
            update_response_time = 0.0
        return StandaloneProfile(
            mix=self.mix,
            demands=self.demands,
            abort_rate=abort_rate,
            update_response_time=update_response_time,
        )

    def with_conflict(self, conflict: ConflictProfile) -> "WorkloadSpec":
        """Return a copy with a different conflict footprint (Figure 14)."""
        return dataclasses.replace(self, conflict=conflict)

    def with_mix_name(self, mix_name: str) -> "WorkloadSpec":
        """Return a copy renamed (used by derived microbenchmarks)."""
        return dataclasses.replace(self, mix_name=mix_name)

    def with_demands(self, demands: ServiceDemands) -> "WorkloadSpec":
        """Return a copy with different ground-truth demands (ablations)."""
        return dataclasses.replace(self, demands=demands)


def demands_ms(
    read_cpu: float,
    read_disk: float,
    write_cpu: float = 0.0,
    write_disk: float = 0.0,
    writeset_cpu: float = 0.0,
    writeset_disk: float = 0.0,
) -> ServiceDemands:
    """Build :class:`ServiceDemands` from millisecond values (Tables 3/5)."""
    from ..core.units import ms

    return ServiceDemands(
        read=ResourceDemand(cpu=ms(read_cpu), disk=ms(read_disk)),
        write=ResourceDemand(cpu=ms(write_cpu), disk=ms(write_disk)),
        writeset=ResourceDemand(cpu=ms(writeset_cpu), disk=ms(writeset_disk)),
    )
