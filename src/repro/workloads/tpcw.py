"""TPC-W workload mixes (Tables 2 and 3 of the paper).

TPC-W models an online bookstore.  The three mixes differ in their update
fraction: browsing 5%, shopping 20% (the primary mix), ordering 50%.
Service demands below are the paper's measured values on PostgreSQL 8.0.3
(single Xeon 2.4 GHz, §6.1); they are the ground truth our simulator
reproduces and our profiler re-measures.

The standard scale is 100 EBs and 10,000 items (700 MB database).  Update
transactions touch a handful of rows in the item/order tables; we model the
conflict footprint as ``U = 3`` uniform updates over ``DbUpdateSize =
10,000`` updatable rows, which yields standalone abort rates of the order
the paper reports (A1 < 0.023%).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.params import ConflictProfile, WorkloadMix
from .spec import WorkloadSpec, demands_ms

#: Conflict footprint shared by the three mixes.  TPC-W update
#: transactions mostly insert into growing order tables (inserts never
#: conflict); the conflicting row updates (item stock, customer balances)
#: spread over roughly 40k rows with ~2 updated rows per transaction, which
#: reproduces the paper's standalone abort rates (A1 < 0.023% for all
#: mixes, §6.2.1).
_CONFLICT = ConflictProfile(db_update_size=40_000, updates_per_transaction=2)

#: Average propagated writeset size (§6.1).
WRITESET_BYTES = 275

#: Database size (§6.1).
DATABASE_SIZE_MB = 700.0

BROWSING = WorkloadSpec(
    benchmark="tpcw",
    mix_name="browsing",
    mix=WorkloadMix(read_fraction=0.95, write_fraction=0.05),
    demands=demands_ms(
        read_cpu=41.62, read_disk=14.56,
        write_cpu=17.47, write_disk=8.74,
        writeset_cpu=3.48, writeset_disk=2.62,
    ),
    clients_per_replica=30,
    think_time=1.0,
    conflict=_CONFLICT,
    writeset_bytes=WRITESET_BYTES,
    database_size_mb=DATABASE_SIZE_MB,
    description="TPC-W browsing mix: 95% read-only, near-linear scalability",
)

SHOPPING = WorkloadSpec(
    benchmark="tpcw",
    mix_name="shopping",
    mix=WorkloadMix(read_fraction=0.80, write_fraction=0.20),
    demands=demands_ms(
        read_cpu=41.43, read_disk=15.11,
        write_cpu=12.51, write_disk=6.05,
        writeset_cpu=3.18, writeset_disk=1.81,
    ),
    clients_per_replica=40,
    think_time=1.0,
    conflict=_CONFLICT,
    writeset_bytes=WRITESET_BYTES,
    database_size_mb=DATABASE_SIZE_MB,
    description="TPC-W shopping mix: 80% read-only, the primary TPC-W workload",
)

ORDERING = WorkloadSpec(
    benchmark="tpcw",
    mix_name="ordering",
    mix=WorkloadMix(read_fraction=0.50, write_fraction=0.50),
    demands=demands_ms(
        read_cpu=22.46, read_disk=12.62,
        write_cpu=13.48, write_disk=8.34,
        writeset_cpu=4.04, writeset_disk=1.67,
    ),
    clients_per_replica=50,
    think_time=1.0,
    conflict=_CONFLICT,
    writeset_bytes=WRITESET_BYTES,
    database_size_mb=DATABASE_SIZE_MB,
    description="TPC-W ordering mix: 50% updates, writeset-propagation bound",
)

#: All TPC-W mixes keyed by name, in paper order.
MIXES: Dict[str, WorkloadSpec] = {
    "browsing": BROWSING,
    "shopping": SHOPPING,
    "ordering": ORDERING,
}


def mix_names() -> Tuple[str, ...]:
    """The TPC-W mix names in paper order."""
    return tuple(MIXES)


def get_mix(name: str) -> WorkloadSpec:
    """Look up a TPC-W mix by name (raises KeyError with choices listed)."""
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown TPC-W mix {name!r}; choose from {sorted(MIXES)}"
        ) from None
