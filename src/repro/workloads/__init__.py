"""Benchmark workload definitions: TPC-W, RUBiS, and the §6.3.3 microbenchmark."""

from . import rubis, tpcw
from .microbench import FIGURE14_ABORT_RATES, figure14_specs, heap_table_spec
from .registry import all_workloads, get_workload, workload_names
from .spec import WorkloadSpec, demands_ms

__all__ = [
    "FIGURE14_ABORT_RATES",
    "WorkloadSpec",
    "all_workloads",
    "demands_ms",
    "figure14_specs",
    "get_workload",
    "heap_table_spec",
    "rubis",
    "tpcw",
    "workload_names",
]
