"""Scaled wall-clock time for the live cluster runtime.

The cluster executes real transactions but charges *scaled* durations: a
virtual duration ``d`` (seconds, as the workload specs define them) is
slept for ``d * time_scale`` wall seconds.  All measurements are reported
in virtual seconds, so throughput and response times are directly
comparable with the discrete-event simulator and the analytical model,
while a 25-virtual-second run finishes in 2.5 wall seconds at the default
scale of 0.1.

Choosing ``time_scale``: smaller is faster but squeezes the emulated
service times toward the scheduler's sleep resolution; once scaled sleeps
drop under a millisecond or so, wake-up overshoot inflates every service
time and throughput drifts low.  The defaults keep TPC-W demands in the
multi-millisecond range.
"""

from __future__ import annotations

import time

from ..core.errors import ConfigurationError


class VirtualClock:
    """Maps between wall-clock and virtual (spec) seconds."""

    def __init__(self, time_scale: float = 0.1) -> None:
        if time_scale <= 0.0:
            raise ConfigurationError(
                f"time_scale must be positive, got {time_scale}"
            )
        self.time_scale = time_scale
        self._t0 = time.monotonic()

    def now(self) -> float:
        """Current virtual time in seconds since the clock was created."""
        return (time.monotonic() - self._t0) / self.time_scale

    def sleep(self, virtual_duration: float) -> None:
        """Sleep *virtual_duration* virtual seconds (scaled wall sleep)."""
        if virtual_duration > 0.0:
            time.sleep(virtual_duration * self.time_scale)

    def to_wall(self, virtual_duration: float) -> float:
        """Convert a virtual duration to wall seconds."""
        return virtual_duration * self.time_scale
