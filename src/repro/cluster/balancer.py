"""Front-end load balancing for the live cluster runtime.

The routing policies — least-loaded, pinned, random, conflict-aware — are
shared verbatim with the simulator: one implementation,
:func:`repro.simulator.systems.select_replica`, so the two execution
engines can never drift apart on routing behaviour.  This class adds only
what a *threaded* front end needs: a lock around the RNG, since ``select``
is called concurrently from every client thread.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..simulator.systems import (
    CAPACITY_WEIGHTED,
    CONFLICT_AWARE,
    LB_POLICIES,
    LEAST_LOADED,
    PARTITION_AWARE,
    PINNED,
    RANDOM,
    select_replica,
)

#: Policy names re-exported for callers that think in terms of the live
#: balancer (tests and the cluster runtime import them from here).
__all__ = [
    "CAPACITY_WEIGHTED",
    "CONFLICT_AWARE",
    "LB_POLICIES",
    "LEAST_LOADED",
    "LoadBalancer",
    "PARTITION_AWARE",
    "PINNED",
    "RANDOM",
    "select_replica",
]


class LoadBalancer:
    """Routes transactions to replicas according to a named policy."""

    def __init__(self, policy: str, rng: np.random.Generator) -> None:
        if policy not in LB_POLICIES:
            raise ConfigurationError(
                f"unknown lb_policy {policy!r}; one of {LB_POLICIES}"
            )
        self.policy = policy
        self._rng = rng
        self._rng_lock = threading.Lock()

    def select(
        self, candidates: Sequence, client_id: int, is_update: bool = False,
        partitions: Sequence = (),
    ):
        """Pick an *available* replica for one transaction.

        *partitions* restricts routing to replicas hosting the
        transaction's data (partial replication) — the shared filter in
        :func:`~repro.simulator.systems.select_replica` applies to every
        policy.
        """
        if self.policy == RANDOM:
            # Only the random policy touches the shared RNG; the others
            # route lock-free so the balancer never serializes clients.
            with self._rng_lock:
                return select_replica(
                    self.policy, candidates, client_id, is_update, self._rng,
                    partitions=partitions,
                )
        return select_replica(
            self.policy, candidates, client_id, is_update, self._rng,
            partitions=partitions,
        )
