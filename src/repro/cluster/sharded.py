"""Sharded-certifier assembly for the live cluster runtime.

:class:`ShardedMultiMasterCluster` is the live counterpart of
:class:`~repro.simulator.sharded.ShardedMultiMasterSystem`: the
multi-master topology with the single shared certifier replaced by
per-partition :class:`~repro.sidb.sharded.ShardedCertifier` shards and
the single replication channel replaced by one channel *per shard*.

What changes on the live update path:

* **Per-shard commit order.**  Each certifier shard has its own order
  lock; a coordinator acquires the locks of every touched shard in
  ascending partition order (deadlock-free), certifies, and publishes
  one :class:`ShardDelivery` per touched shard while still holding
  those locks — so every shard channel sees its shard's versions
  strictly ascending, with no global ordering point anywhere.
* **Per-lane installation.**  A delivery for shard ``p`` installs
  exactly partition ``p``'s rows (the home shard's delivery is
  ``primary`` and additionally pays the writeset's CPU/disk once).
  Installing each partition's rows from its own lane keeps every key's
  install order equal to its shard's commit order even when a
  cross-partition writeset races a single-partition one on a shared
  shard — the correctness condition replicated state convergence rests
  on.  Replicas assign their own monotone *local* versions as
  deliveries land; concurrently committed writesets have disjoint keys,
  so the final state is order-independent across lanes.
* **Snapshots are version vectors.**  A transaction's snapshot floors
  are the originating replica's per-shard applied vector, read *before*
  ``begin()`` (conservative: the snapshot can only contain more than
  the floors claim, never less).
* **Cross-partition commits pay a coordination round**: the response
  path charges ``2 x certifier_delay`` where a single-partition commit
  charges ``1 x`` (certification-forwarding to the home shard).
* **The certifier can be a real serving centre.**  With
  ``CertifierSpec.service_time > 0`` each commit occupies its touched
  shards' order locks for that long; the global arm of the comparison
  (:class:`~.cluster.MultiMasterCluster` with the same spec) serialises
  every commit through the one order lock — the contention sharding
  removes.

Elastic membership is refused loudly: joins would need vector-valued
state transfer and per-shard replay, the follow-on seam.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import rng as rng_util
from ..core.errors import (
    ConfigurationError,
    RetryLimitExceeded,
    SimulationError,
)
from ..sidb.certifier_api import CertifierSpec, shard_version_key
from ..sidb.sharded import ShardedCertifier
from ..sidb.writeset import Writeset
from ..simulator.sampling import EXPONENTIAL, WorkloadSampler
from ..simulator.systems import hosts_any
from ..telemetry import schema as tel_schema
from .channel import ReplicationChannel
from .cluster import Cluster
from .replica import _VACUUM_INTERVAL, ClusterReplica


@dataclass(frozen=True)
class ShardDelivery:
    """One commit's appearance on one certifier shard's channel.

    The home shard's delivery is ``primary``: the one lane hosting
    replicas are charged apply work on.  Every touched shard's delivery
    installs that shard's rows, so installs stay in per-shard commit
    order on every replica.
    """

    shard: int
    shard_version: int
    writeset: Writeset
    primary: bool

    @property
    def commit_version(self) -> int:
        """The shard-local version (the channel's ordering key)."""
        return self.shard_version


def _rows_for_shard(writeset: Writeset, shard: int) -> Dict[object, object]:
    """The writes landing on *shard*, by the sampler's key convention.

    Partition-qualified keys — ``("updatable", partition, row)`` — go to
    their own shard; anything else (plain keys in tests) rides the home
    shard, mirroring
    :meth:`repro.sidb.sharded.ShardedCertifier._keys_by_partition`.
    """
    parts = sorted(writeset.partition_set)
    home = parts[0]
    members = set(parts)
    rows: Dict[object, object] = {}
    for key, value in writeset.writes:
        partition = home
        if isinstance(key, tuple) and len(key) > 2 and key[1] in members:
            partition = key[1]
        if partition == shard:
            rows[key] = value
    return rows


class ShardedClusterReplica(ClusterReplica):
    """A live replica whose replication state is a per-shard vector.

    One applier thread drains one queue of :class:`ShardDelivery`
    objects; each delivery installs its shard's rows at a fresh local
    version and advances that shard's watermark.  Per-shard delivery
    order is preserved end to end (publishers hold the shard's order
    lock through publish; the queue is FIFO; the applier is serial), so
    lane contiguity is asserted, not reconstructed.
    """

    def __init__(
        self,
        name: str,
        clock,
        sampler: WorkloadSampler,
        partitions: int,
        max_concurrency: Optional[int] = None,
        capacity: float = 1.0,
        hosted_partitions=None,
    ) -> None:
        super().__init__(
            name, clock, sampler,
            max_concurrency=max_concurrency, capacity=capacity,
            hosted_partitions=hosted_partitions,
        )
        if partitions < 1:
            raise ConfigurationError(
                f"{name}: partitions must be >= 1, got {partitions}"
            )
        #: Highest contiguously applied version per certifier shard
        #: (guarded by ``_state``, like the rest of the apply state).
        self.applied_vector: Dict[int, int] = {
            p: 0 for p in range(partitions)
        }

    @property
    def applied_version(self) -> int:
        """Sum of the per-shard watermarks: advances by one per shard
        version applied, comparable with the sharded certifier's summed
        clock (and equal to the engine's local version count)."""
        with self._state:
            return sum(self.applied_vector.values())

    def shard_floors(self) -> Dict[int, int]:
        """Snapshot of the applied vector (a transaction's GSI floors)."""
        with self._state:
            return dict(self.applied_vector)

    def caught_up(self, target: Tuple[Tuple[int, int], ...]) -> bool:
        """True when every lane reached *target* (quiesce check)."""
        with self._state:
            return all(
                self.applied_vector.get(p, 0) >= version
                for p, version in target
            )

    def enqueue_writeset(self, delivery: ShardDelivery,
                         charged: bool = True) -> None:
        """Queue one shard delivery for in-order application."""
        telemetry = self.telemetry
        enqueued_at = self._clock.now() if telemetry is not None else None
        with self._state:
            if self._failed:
                return
            if telemetry is not None and telemetry.auditor is not None:
                # Publishers hold the shard's order lock, so each lane's
                # deliveries are audited in shard-commit order.
                telemetry.auditor.on_deliver(
                    self.name, delivery.shard_version, shard=delivery.shard
                )
            self._queue.append((delivery, charged, enqueued_at))
            self._state.notify_all()

    def _apply_writesets(self) -> None:
        applied_since_vacuum = 0
        while True:
            with self._state:
                while not self._stopping and (
                    not self._queue or not self._available
                ):
                    self._state.wait()
                if not self._queue:
                    return
                delivery, charged, enqueued_at = self._queue.popleft()
            writeset = delivery.writeset
            hosts_shard = (
                self.hosted_partitions is None
                or delivery.shard in self.hosted_partitions
            )
            # The home lane pays the whole writeset's application once,
            # iff this replica hosts any touched partition and did not
            # originate the transaction; every other lane is free.
            pay = (charged and delivery.primary
                   and hosts_any(self, writeset.partition_set))
            if pay:
                self.cpu.serve(self._sampler.writeset_cpu())
                self.disk.serve(self._sampler.writeset_disk())
            rows = _rows_for_shard(writeset, delivery.shard) if hosts_shard else {}
            local_version = self.db.latest_version + 1
            if rows:
                self.db.apply_shard_rows(local_version, rows)
            else:
                # Not hosted (or no rows landed here): a version marker
                # keeps the local clock equal to the watermark sum.
                self.db.apply_version_marker(local_version)
            with self._state:
                watermark = self.applied_vector.get(delivery.shard)
                if (watermark is None
                        or delivery.shard_version != watermark + 1):
                    raise SimulationError(
                        f"{self.name}: shard {delivery.shard} delivery "
                        f"v{delivery.shard_version} breaks lane contiguity "
                        f"(watermark is {watermark})"
                    )
                self.applied_vector[delivery.shard] = delivery.shard_version
                if delivery.primary:
                    self.writesets_applied += 1
            telemetry = self.telemetry
            if telemetry is not None:
                if delivery.primary and enqueued_at is not None:
                    now = self._clock.now()
                    telemetry.observe_apply(self.name, now - enqueued_at)
                    telemetry.apply_span(
                        shard_version_key(delivery.shard,
                                          delivery.shard_version),
                        self.name, enqueued_at, now,
                    )
                if telemetry.auditor is not None:
                    telemetry.auditor.on_apply(
                        self.name, delivery.shard_version, pay,
                        self.hosted_partitions, shard=delivery.shard,
                    )
            applied_since_vacuum += 1
            if applied_since_vacuum >= _VACUUM_INTERVAL:
                applied_since_vacuum = 0
                self.db.vacuum()


class ShardedMultiMasterCluster(Cluster):
    """Figure 4 with the write path sharded: N symmetric live replicas,
    one certifier shard (and one replication channel) per partition."""

    design = "multi-master"

    def __init__(self, spec, config, seed, clock, metrics,
                 distribution=EXPONENTIAL, lb_policy="least-loaded",
                 capacities=None, partition_map=None,
                 certifier_spec: Optional[CertifierSpec] = None):
        if certifier_spec is None or not certifier_spec.is_sharded:
            raise ConfigurationError(
                "ShardedMultiMasterCluster requires a sharded CertifierSpec"
            )
        if spec.partitions < 2:
            raise ConfigurationError(
                "the sharded certifier needs a partitioned workload "
                f"(spec {spec.name!r} has partitions={spec.partitions}); "
                "use --certifier global for unpartitioned runs"
            )
        super().__init__(spec, config, seed, clock, metrics,
                         distribution, lb_policy, capacities, partition_map)
        self._certifier_spec = certifier_spec
        self._service_time = certifier_spec.service_time
        self._shard_count = spec.partitions
        self.certifier = ShardedCertifier(partitions=spec.partitions)
        #: One in-order channel per certifier shard: per-shard commit
        #: order is the only order there is.
        self._shard_channels: List[ReplicationChannel] = [
            ReplicationChannel() for _ in range(spec.partitions)
        ]
        #: Per-shard commit-order locks; coordinators acquire their
        #: touched set in ascending partition order (deadlock-free).
        self._shard_locks: List[threading.Lock] = [
            threading.Lock() for _ in range(spec.partitions)
        ]
        #: In-flight snapshot floors: every update attempt registers the
        #: per-shard floors it will certify against, so the prune floor
        #: never passes a floor still in use (mirrors the DES system's
        #: active-snapshot registry).  Without this, long attempts hit
        #: the certifier's conservative pruned-history fallback and
        #: spuriously abort in droves.
        self._floor_lock = threading.Lock()
        self._active_floors: Dict[int, Dict[int, int]] = {}
        self._floor_token = 0
        for index in range(config.replicas):
            replica = self._make_replica(
                f"replica{index}", index,
                capacity=self._initial_capacity(index),
                hosted_partitions=self._hosted_for_index(index),
            )
            for channel in self._shard_channels:
                channel.subscribe(replica)
        self._members_created = config.replicas

    # ------------------------------------------------------------------
    # Replica construction / telemetry (vector-aware variants)
    # ------------------------------------------------------------------

    def _new_replica(self, name, path, certifier=None, capacity=1.0,
                     hosted_partitions=None) -> ShardedClusterReplica:
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "live-replica", path),
            distribution=self._distribution,
        )
        replica = ShardedClusterReplica(
            name, self.clock, sampler,
            partitions=self._shard_count,
            max_concurrency=self.config.max_concurrency,
            capacity=capacity,
            hosted_partitions=hosted_partitions,
        )
        with self.metrics_lock:
            self.metrics.watch_resource(f"{name}.cpu", replica.cpu)
            self.metrics.watch_resource(f"{name}.disk", replica.disk)
        if self.telemetry is not None:
            replica.telemetry = self.telemetry
            self._audit_attach(replica)
        return replica

    def _audit_attach(self, replica: ShardedClusterReplica) -> None:
        """Register every (replica, shard) delivery lane with the auditor."""
        auditor = (self.telemetry.auditor
                   if self.telemetry is not None else None)
        if auditor is None:
            return
        for partition, watermark in replica.shard_floors().items():
            auditor.on_attach(replica.name, watermark, shard=partition)

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self.certifier.telemetry = telemetry
        for replica in self.replicas:
            replica.telemetry = telemetry
            self._audit_attach(replica)

    # ------------------------------------------------------------------
    # Lifecycle: vector-valued quiesce, per-shard prune
    # ------------------------------------------------------------------

    def quiesce(self, timeout: float = 30.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.applier_errors():
                return False
            target = self.certifier.version_vector()
            if all(
                r.caught_up(target) and r.apply_backlog == 0
                for r in self.replicas
                if not r.failed
            ):
                return True
            time.sleep(0.005)
        return False

    def _register_floors(self, floors: Dict[int, int]) -> int:
        """Pin *floors* against pruning for one certification attempt."""
        with self._floor_lock:
            self._floor_token += 1
            self._active_floors[self._floor_token] = dict(floors)
            return self._floor_token

    def _release_floors(self, token: int) -> None:
        with self._floor_lock:
            self._active_floors.pop(token, None)

    def _prune(self) -> None:
        # Per-shard floors: the minimum applied watermark across the
        # fleet, further held back by any in-flight attempt's registered
        # floors.  An attempt begun after this prune reads floors at or
        # above it (watermarks are monotone) and an attempt in flight is
        # registered, so certification always gets an exact conflict
        # answer; the certifier's conservative retained-history fallback
        # stays a last-resort guard, not a steady-state abort source.
        floors: Optional[Dict[int, int]] = None
        for replica in self.replicas:
            if replica.failed:
                continue
            vector = replica.shard_floors()
            if floors is None:
                floors = vector
            else:
                floors = {
                    p: min(v, vector.get(p, 0)) for p, v in floors.items()
                }
        if not floors:
            return
        with self._floor_lock:
            active = list(self._active_floors.values())
        for vector in active:
            for p, floor in vector.items():
                if p in floors and floor < floors[p]:
                    floors[p] = floor
        self.certifier.observe_snapshot(floors)

    # ------------------------------------------------------------------
    # Elastic membership: refused loudly (vector state transfer needed)
    # ------------------------------------------------------------------

    def add_replica(self, transfer_writesets: int = 16,
                    capacity: float = 1.0):
        raise SimulationError(
            "elastic membership is not supported with the sharded "
            "certifier (joins need vector-valued state transfer)"
        )

    def remove_replica(self, drain_timeout: float = 30.0, replica=None,
                       force: bool = False):
        raise SimulationError(
            "elastic membership is not supported with the sharded "
            "certifier (joins need vector-valued state transfer)"
        )

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------

    def execute(self, sampler, is_update, client_id):
        telemetry = self.telemetry
        trace = (
            telemetry.tracer.start_trace()
            if telemetry is not None else None
        )
        route_start = self.clock.now()
        partitions = sampler.sample_partition_set(is_update)
        replica = self._route(client_id, is_update, partitions)
        if telemetry is not None:
            telemetry.count_route(replica.name, is_update)
            if trace is not None:
                telemetry.tracer.add_span(
                    trace, tel_schema.SPAN_ROUTE, route_start,
                    self.clock.now(), subject=replica.name,
                    policy=self.balancer.policy,
                )
        self._acquire(replica)
        aborts = 0
        try:
            if not is_update:
                work_start = self.clock.now()
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, replica.applied_version,
                        self.certifier.latest_version, self.clock.now(),
                    )
                self._serve_read_txn(replica, sampler)
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.clock.now(), subject=replica.name,
                        kind="read",
                    )
                return aborts
            for attempt in range(1, self.config.max_retries + 1):
                # GSI floors are read *before* begin(): installs landing
                # in between make the snapshot strictly richer than the
                # floors claim — conservative, never unsafe.  Registering
                # them pins the certifier's prune floor for the attempt.
                floors = replica.shard_floors()
                floor_token = self._register_floors(floors)
                txn = replica.db.begin()
                self._record_snapshot_age(
                    self.certifier.latest_version - txn.snapshot_version
                )
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, txn.snapshot_version,
                        self.certifier.latest_version, self.clock.now(),
                    )
                work_start = self.clock.now()
                replica.serve_update_attempt(sampler)
                sampled = sampler.sample_writeset(
                    txn.snapshot_version, partitions
                )
                for key, value in sampled.writes:
                    txn.write(key, value)
                txn.partitions = sampled.partitions
                writeset = txn.writeset().with_snapshot_vector({
                    p: floors.get(p, 0) for p in sampled.partitions
                })
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.clock.now(), subject=replica.name,
                        kind="update", attempt=attempt,
                    )
                self._record_certification()
                parts = sorted(writeset.partition_set)
                home = parts[0]
                # Forwarding protocol: one round to a single shard, one
                # extra coordination round for a cross-partition commit.
                rounds = 2 if len(parts) > 1 else 1
                certify_start = self.clock.now()
                if telemetry is not None:
                    telemetry.certify_begin()
                try:
                    locks = [self._shard_locks[p] for p in parts]
                    for lock in locks:
                        lock.acquire()
                    try:
                        if self._service_time > 0.0:
                            # Service occupancy: the touched shards are
                            # held for the certification's duration, so
                            # disjoint-partition commits overlap while
                            # same-shard ones serialise.
                            self.clock.sleep(self._service_time)
                        outcome = self.certifier.certify(writeset)
                        if outcome.committed:
                            if (telemetry is not None
                                    and telemetry.auditor is not None):
                                for p, v in outcome.shard_versions:
                                    telemetry.auditor.on_commit(
                                        v, writeset.partitions,
                                        replica.name, shard=p,
                                        primary=(p == home),
                                    )
                            if trace is not None:
                                # Appliers find the trace through the
                                # home shard's version key — register it
                                # before any publish.
                                telemetry.tracer.note_version(
                                    shard_version_key(
                                        home, outcome.commit_version
                                    ),
                                    trace,
                                )
                            committed_ws = writeset.committed(
                                outcome.commit_version
                            )
                            for p, v in outcome.shard_versions:
                                self._shard_channels[p].publish(
                                    ShardDelivery(
                                        shard=p, shard_version=v,
                                        writeset=committed_ws,
                                        primary=(p == home),
                                    ),
                                    origin=replica,
                                )
                    finally:
                        for lock in reversed(locks):
                            lock.release()
                    if telemetry is not None and outcome.committed:
                        telemetry.note_commit(
                            self.certifier.latest_version, self.clock.now()
                        )
                        if trace is not None:
                            telemetry.tracer.add_span(
                                trace, tel_schema.SPAN_PROPAGATE,
                                certify_start, self.clock.now(),
                                subject="channel",
                                fanout=len(self.replicas),
                            )
                    # The response reaches the replica after the
                    # protocol's coordination rounds (§6.3.2).
                    self.clock.sleep(self.config.certifier_delay * rounds)
                finally:
                    self._release_floors(floor_token)
                    if telemetry is not None:
                        telemetry.certify_end()
                if trace is not None:
                    tags = {"attempt": attempt,
                            "committed": outcome.committed,
                            "shards": len(parts)}
                    if not outcome.committed:
                        tags["abort"] = tel_schema.ABORT_WW_CONFLICT
                        tags["conflicts"] = len(outcome.conflicting_keys)
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_CERTIFY, certify_start,
                        self.clock.now(), subject="certifier", **tags,
                    )
                if outcome.committed:
                    replica.db.finish_remote(txn, outcome.commit_version)
                    return aborts
                replica.db.finish_remote(txn, None)
                aborts += 1
            raise RetryLimitExceeded(
                self.design, "update", self.config.max_retries
            )
        finally:
            self._release(replica)
            replica.exit()
