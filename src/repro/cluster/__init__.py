"""Live replicated-cluster runtime: the third pillar of the reproduction.

The repo validates the paper's predictions three ways:

1. the **analytical model** (:mod:`repro.models`) predicts replicated
   performance from a standalone profile;
2. the **discrete-event simulator** (:mod:`repro.simulator`) measures a
   timed but virtual system;
3. this package *executes* the replicated designs for real — each replica
   wraps a real :class:`~repro.sidb.engine.SIDatabase`, client threads run
   genuine snapshot-isolated transactions against it, a replication channel
   propagates committed writesets in commit order, and a shared certifier
   enforces system-wide first-committer-wins.

Time is wall-clock, scaled: every duration the workload spec defines (think
time, CPU/disk service demands, load-balancer and certification delays) is
slept for ``duration * time_scale`` seconds, so a run that would take
minutes completes in seconds while queueing behaviour — and therefore
throughput and response time — stays comparable with the simulator.

Both paper topologies are assembled behind a common API:
:class:`MultiMasterCluster` (Tashkent-style, Figure 4) and
:class:`SingleMasterCluster` (Ganymed-style, Figure 5).  :func:`run_cluster`
drives either with closed-loop or open-loop traffic, collects the same
metrics schema as the simulator, supports replica crash/recovery faults,
and reports whether all replicas converged to the same version after
quiesce — the replication-correctness check.
"""

from .balancer import LoadBalancer
from .channel import ReplicationChannel
from .clock import VirtualClock
from .cluster import Cluster, MultiMasterCluster, SingleMasterCluster
from .replica import ClusterReplica
from .resources import LiveResource
from .runner import CLUSTER_DESIGNS, ClusterResult, run_cluster
from .sharded import (
    ShardDelivery,
    ShardedClusterReplica,
    ShardedMultiMasterCluster,
)

__all__ = [
    "CLUSTER_DESIGNS",
    "Cluster",
    "ClusterReplica",
    "ClusterResult",
    "LiveResource",
    "LoadBalancer",
    "MultiMasterCluster",
    "ReplicationChannel",
    "ShardDelivery",
    "ShardedClusterReplica",
    "ShardedMultiMasterCluster",
    "SingleMasterCluster",
    "VirtualClock",
    "run_cluster",
]
