"""One live replica: a real SI engine behind emulated CPU and disk.

A :class:`ClusterReplica` owns

* a :class:`~repro.sidb.engine.SIDatabase` holding the replica's actual
  multi-version data (for multi-master clusters it is constructed around
  the *shared* certifier service);
* two :class:`~repro.cluster.resources.LiveResource` servers emulating its
  CPU and disk with scaled wall-clock sleeps;
* an **applier thread** — the thread-per-replica of the runtime — that
  drains the replication channel's queue and installs propagated writesets
  in commit order.

The applier is deliberately serial: the version store only accepts in-order
installs, so one thread applying in queue order is both the simplest and
the correct realisation of the paper's FIFO update propagation.  (The
simulator lets charged applications overlap; at the writeset demands of the
paper's workloads the applier is far from saturated, so the difference does
not move the measured operating points.)  One honest divergence from the
simulator: charged applications queue for the CPU *behind* resident client
transactions (FIFO mutex) instead of sharing it (processor sharing), so
under saturation a replica's snapshot staleness — and with it the GSI
abort rate — runs somewhat higher live than simulated.  Throughput is
insensitive to this; the cross-validation report shows the abort-rate
difference explicitly.

Failure injection mirrors :mod:`repro.simulator.faults`: while a replica is
unavailable the load balancer routes around it and the applier *defers* —
writesets stay queued — so on recovery the replica catches up by draining
its backlog, and recovery cost emerges from the backlog length.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional, Tuple

from ..sidb.certifier import Certifier
from ..sidb.engine import SIDatabase
from ..sidb.writeset import Writeset
from ..simulator.sampling import WorkloadSampler
from ..simulator.systems import hosts_any
from .clock import VirtualClock
from .resources import LiveResource

#: The applier garbage-collects versions no snapshot can see every this
#: many applied writesets, bounding the store's memory over long runs.
_VACUUM_INTERVAL = 64


class ClusterReplica:
    """A live database replica with emulated resources and an applier."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        sampler: WorkloadSampler,
        certifier: Optional[Certifier] = None,
        max_concurrency: Optional[int] = None,
        capacity: float = 1.0,
        hosted_partitions: Optional[frozenset] = None,
    ) -> None:
        self.name = name
        self._clock = clock
        # This sampler is used only by the applier thread (writeset
        # demands); client threads bring their own samplers.
        self._sampler = sampler
        self.db = SIDatabase(certifier=certifier)
        #: Relative hardware speed (scales both emulated resources).
        self.capacity = capacity
        #: Partitions this replica hosts (``None`` = everything, the
        #: full-replication default).  Immutable over the replica's life:
        #: the applier reads it lock-free.
        self.hosted_partitions = hosted_partitions
        self.cpu = LiveResource(clock, f"{name}.cpu", rate=capacity)
        self.disk = LiveResource(clock, f"{name}.disk", rate=capacity)
        #: Admission control: bounds concurrently executing client
        #: transactions (the connection pool of the paper's testbed).
        self.admission = (
            threading.BoundedSemaphore(max_concurrency)
            if max_concurrency is not None
            else None
        )
        # _state guards the apply queue, availability, the active counter,
        # and the applied-writeset counter; the applier waits on it.
        self._state = threading.Condition()
        # (writeset, charged, enqueued_at) — the timestamp is None while
        # telemetry is detached, keeping the clock off the hot path.
        self._queue: Deque[Tuple[Writeset, bool, Optional[float]]] = deque()
        self._available = True
        self._stopping = False
        # Elastic-membership lifecycle: a *joining* replica applies its
        # bulk-replay backlog but is hidden from the load balancer; a
        # *retiring* one is hidden too and re-checked by clients right
        # after enter() (see Cluster._route), closing the select/enter
        # race on scale-down.
        self._joining = False
        self._retiring = False
        self._failed = False
        self._active = 0
        self.writesets_applied = 0
        #: Optional :class:`repro.telemetry.Telemetry` hook (``None``
        #: keeps the enqueue/apply path allocation-free).
        self.telemetry = None
        #: First exception that killed the applier thread (None while
        #: healthy); the runner surfaces it instead of letting a dead
        #: applier masquerade as a quiesce timeout.
        self.applier_error: Optional[BaseException] = None
        self._applier = threading.Thread(
            target=self._apply_loop, name=f"{name}-applier", daemon=True
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the applier thread."""
        self._applier.start()

    def stop(self, timeout: Optional[float] = None, drain: bool = True) -> None:
        """Stop the applier thread, draining the apply queue by default.

        ``drain=False`` discards the queued backlog first — the right
        call for a replica leaving the cluster, whose copy of the state
        is being thrown away anyway.
        """
        with self._state:
            if not drain:
                self._queue.clear()
            self._stopping = True
            self._state.notify_all()
        self._applier.join(timeout)

    @property
    def stopping(self) -> bool:
        """True once :meth:`stop` has been requested."""
        with self._state:
            return self._stopping

    # ------------------------------------------------------------------
    # Routing state
    # ------------------------------------------------------------------

    @property
    def applied_version(self) -> int:
        """Newest locally visible commit version (the GSI snapshot new
        transactions at this replica receive)."""
        return self.db.latest_version

    @property
    def active(self) -> int:
        """Client transactions currently resident (LB routing input)."""
        with self._state:
            return self._active

    def enter(self) -> None:
        """Count one client transaction as resident."""
        with self._state:
            self._active += 1

    def exit(self) -> None:
        """Remove one client transaction from the resident count."""
        with self._state:
            self._active -= 1

    @property
    def available(self) -> bool:
        """Whether the load balancer may route new transactions here.

        False while the replica is down (fault injection), still joining
        (bulk replay in progress), retiring (drain before removal), or
        crashed for good.
        """
        with self._state:
            return (self._available and not self._joining
                    and not self._retiring and not self._failed)

    @available.setter
    def available(self, value: bool) -> None:
        with self._state:
            if self._failed:
                return  # a crash is permanent; recovery means replacement
            self._available = value
            if value:
                # Recovery: wake the applier to drain the deferred backlog.
                self._state.notify_all()

    @property
    def failed(self) -> bool:
        """True once the replica crashed (state lost, never recovers)."""
        with self._state:
            return self._failed

    def crash(self) -> None:
        """Kill the replica: stop consuming writesets, drop the backlog.

        The crash analogue of the drain fault: the load balancer routes
        around it *and* the applier stops — queued and future writesets
        are discarded, since the replica's copy of the state is lost.
        Only force-removal plus a fresh state-transfer join (the
        :mod:`repro.ops` replacement path) restores redundancy.
        """
        with self._state:
            self._failed = True
            self._available = False
            self._queue.clear()
        telemetry = self.telemetry
        if telemetry is not None and telemetry.auditor is not None:
            telemetry.auditor.on_crash(self.name)

    @property
    def joining(self) -> bool:
        """True while the elastic join (state transfer) is in progress."""
        with self._state:
            return self._joining

    @property
    def retiring(self) -> bool:
        """True once the replica has been picked for elastic removal."""
        with self._state:
            return self._retiring

    def begin_join(self) -> None:
        """Hide the replica from the balancer while it catches up.

        Unlike fault unavailability, the applier keeps running: the join
        cost *is* applying the bulk-replay backlog.
        """
        with self._state:
            self._joining = True

    def complete_join(self) -> None:
        """Enter load-balancer rotation (bulk replay finished)."""
        with self._state:
            self._joining = False

    def begin_retire(self) -> None:
        """Stop receiving new transactions; existing ones drain."""
        with self._state:
            self._retiring = True

    def cancel_retire(self) -> None:
        """Return to rotation (the drain timed out; removal rolled back)."""
        with self._state:
            self._retiring = False

    # ------------------------------------------------------------------
    # Client-transaction execution (called from client threads)
    # ------------------------------------------------------------------

    def serve_read(self, sampler: WorkloadSampler) -> None:
        """Charge one read-only transaction's CPU and disk work."""
        self.cpu.serve(sampler.read_cpu())
        self.disk.serve(sampler.read_disk())

    def serve_update_attempt(self, sampler: WorkloadSampler) -> None:
        """Charge one update attempt's local execution work."""
        self.cpu.serve(sampler.update_cpu())
        self.disk.serve(sampler.update_disk())

    # ------------------------------------------------------------------
    # Update propagation (fed by the replication channel)
    # ------------------------------------------------------------------

    def enqueue_writeset(self, writeset: Writeset, charged: bool = True) -> None:
        """Queue a committed writeset for in-order application.

        Dropped silently once the replica has crashed: the dead replica
        no longer consumes writesets, and its state is discarded anyway.
        """
        telemetry = self.telemetry
        enqueued_at = self._clock.now() if telemetry is not None else None
        with self._state:
            if self._failed:
                return
            if telemetry is not None and telemetry.auditor is not None:
                # Publishers hold the cluster's order lock, so deliveries
                # are audited in commit order.
                telemetry.auditor.on_deliver(
                    self.name, writeset.commit_version
                )
            self._queue.append((writeset, charged, enqueued_at))
            self._state.notify_all()

    @property
    def apply_backlog(self) -> int:
        """Writesets queued but not yet installed."""
        with self._state:
            return len(self._queue)

    def _apply_loop(self) -> None:
        try:
            self._apply_writesets()
        except BaseException as exc:  # noqa: BLE001 — surfaced by the runner
            self.applier_error = exc

    def hosts_writeset(self, writeset: Writeset) -> bool:
        """True when this replica stores *writeset*'s data.

        Delegates to the routing layer's hosting predicate
        (:func:`repro.simulator.systems.hosts_any`) so a writeset routed
        to a replica can never be skipped by its applier.
        """
        return hosts_any(self, writeset.partition_set)

    def _apply_writesets(self) -> None:
        applied_since_vacuum = 0
        while True:
            with self._state:
                while not self._stopping and (
                    not self._queue or not self._available
                ):
                    self._state.wait()
                # Waking with an empty queue implies stopping: drained.
                if not self._queue:
                    return
                # On shutdown the remaining backlog is drained regardless
                # of availability (quiesce implies recovery).
                writeset, charged, enqueued_at = self._queue.popleft()
            if not self.hosts_writeset(writeset):
                # Partial replication: the data is not placed here.  Skip
                # the payload and its resource cost, but advance the
                # version clock so later *hosted* writesets still install
                # in global commit order.
                self.db.apply_version_marker(writeset.commit_version)
                telemetry = self.telemetry
                if telemetry is not None and telemetry.auditor is not None:
                    # No application work was charged: this is a version
                    # marker, whatever the channel's charge flag said.
                    telemetry.auditor.on_apply(
                        self.name, writeset.commit_version, False,
                        self.hosted_partitions,
                    )
                continue
            if charged:
                self.cpu.serve(self._sampler.writeset_cpu())
                self.disk.serve(self._sampler.writeset_disk())
            # A host of only some of a cross-partition writeset's
            # partitions installs exactly its own rows.
            self.db.apply_writeset(writeset, self.hosted_partitions)
            with self._state:
                self.writesets_applied += 1
            telemetry = self.telemetry
            if telemetry is not None:
                if enqueued_at is not None:
                    now = self._clock.now()
                    telemetry.observe_apply(self.name, now - enqueued_at)
                    telemetry.apply_span(
                        writeset.commit_version, self.name, enqueued_at,
                        now,
                    )
                if telemetry.auditor is not None:
                    telemetry.auditor.on_apply(
                        self.name, writeset.commit_version, charged,
                        self.hosted_partitions,
                    )
            applied_since_vacuum += 1
            if applied_since_vacuum >= _VACUUM_INTERVAL:
                applied_since_vacuum = 0
                self.db.vacuum()
