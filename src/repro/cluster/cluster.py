"""The two paper topologies, assembled from live components.

:class:`MultiMasterCluster` (Figure 4, Tashkent-style): every replica
executes reads and updates against its local :class:`~repro.sidb.engine.
SIDatabase`; update writesets are certified by one *shared*
:class:`~repro.sidb.certifier.Certifier` service enforcing system-wide
first-committer-wins, then broadcast over the replication channel and
installed — at every replica, origin included — in commit order by the
applier threads.

:class:`SingleMasterCluster` (Figure 5, Ganymed-style): the master executes
and commits all updates locally (its engine's own certifier is the
system-wide one) and streams committed writesets to the read-only slaves.

Commit-order discipline: certification (or master commit) and channel
publication happen under one ``_order_lock`` per cluster, so the channel
sees versions strictly ascending.  Timed work — service sleeps and the
multi-master certification delay — happens *outside* that lock: the
certifier processes requests atomically, and its latency is response-path
delay, not serialised hold time (matching the simulator's semantics).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence, Tuple

from ..core import rng as rng_util
from ..core.errors import (
    ConfigurationError,
    RetryLimitExceeded,
    SimulationError,
    TransactionAborted,
)
from ..core.params import ReplicationConfig
from ..sidb.certifier import Certifier
from ..simulator.sampling import EXPONENTIAL, WorkloadSampler
from ..simulator.stats import MetricsCollector
from ..simulator.systems import check_capacities
from ..telemetry import schema as tel_schema
from ..workloads.spec import WorkloadSpec
from .balancer import LoadBalancer
from .channel import ReplicationChannel
from .clock import VirtualClock
from .replica import ClusterReplica

#: Every this many certification requests the cluster garbage-collects
#: state no snapshot can reach (certifier history / master versions); the
#: per-replica stores are vacuumed by their appliers.
_PRUNE_INTERVAL = 256


class Cluster:
    """Shared plumbing of the live topologies: replicas, balancer, metrics."""

    design = "abstract"

    #: Optional :class:`repro.telemetry.Telemetry` hook (see
    #: :meth:`attach_telemetry`); ``None`` keeps every hot path exactly
    #: as it was before the telemetry layer existed.
    telemetry = None

    def __init__(
        self,
        spec: WorkloadSpec,
        config: ReplicationConfig,
        seed: int,
        clock: VirtualClock,
        metrics: MetricsCollector,
        distribution: str = EXPONENTIAL,
        lb_policy: str = "least-loaded",
        capacities: Optional[Sequence[float]] = None,
        partition_map=None,
    ) -> None:
        from ..partition.placement import resolve_partition_map

        self._capacities = check_capacities(capacities, config.replicas)
        self.partition_map = resolve_partition_map(
            spec, config, partition_map, self.design
        )
        self.spec = spec
        self.config = config
        self.clock = clock
        self.metrics = metrics
        #: Serialises MetricsCollector access across client threads.
        self.metrics_lock = threading.Lock()
        self._seed = seed
        self._distribution = distribution
        self.balancer = LoadBalancer(
            lb_policy, rng_util.spawn(seed, "live-load-balancer")
        )
        # Orders certification/commit with channel publication.
        self._order_lock = threading.Lock()
        self._prune_lock = threading.Lock()
        # Serialises elastic membership changes (add/remove) against each
        # other; the replica list itself is replaced copy-on-write under
        # _order_lock so readers never see a half-updated list.
        self._membership_lock = threading.Lock()
        self._certifications_since_prune = 0
        self.replicas: List[ClusterReplica] = []
        #: Monotonic counter naming elastically added replicas (metric
        #: keys must never be reused after a removal).
        self._members_created = 0
        self.channel = ReplicationChannel()
        self.certifier: Certifier

    def _initial_capacity(self, index: int) -> float:
        """Capacity multiplier for the *index*-th initial replica."""
        if self._capacities is None:
            return 1.0
        return self._capacities[index]

    def _hosted_for_index(self, index: int):
        """Hosted-partition set of the *index*-th initial replica
        (``None`` — host everything — without a partial map)."""
        if self.partition_map is None or self.partition_map.is_full:
            return None
        return self.partition_map.hosted_by(index)

    def _new_replica(
        self, name: str, path: object,
        certifier: Optional[Certifier] = None, capacity: float = 1.0,
        hosted_partitions=None,
    ) -> ClusterReplica:
        """Create a replica and register its resources, without attaching
        it to the routing list (elastic joins attach under the order
        lock, after state transfer)."""
        sampler = WorkloadSampler(
            self.spec,
            rng_util.spawn(self._seed, "live-replica", path),
            distribution=self._distribution,
        )
        replica = ClusterReplica(
            name,
            self.clock,
            sampler,
            certifier=certifier,
            max_concurrency=self.config.max_concurrency,
            capacity=capacity,
            hosted_partitions=hosted_partitions,
        )
        with self.metrics_lock:
            self.metrics.watch_resource(f"{name}.cpu", replica.cpu)
            self.metrics.watch_resource(f"{name}.disk", replica.disk)
        if self.telemetry is not None:
            replica.telemetry = self.telemetry
            if self.telemetry.auditor is not None:
                self.telemetry.auditor.on_attach(
                    replica.name, replica.db.latest_version
                )
        return replica

    def _make_replica(
        self, name: str, path: object,
        certifier: Optional[Certifier] = None, capacity: float = 1.0,
        hosted_partitions=None,
    ) -> ClusterReplica:
        replica = self._new_replica(name, path, certifier, capacity,
                                    hosted_partitions)
        self.replicas.append(replica)
        return replica

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.telemetry.Telemetry` into the cluster.

        Called once after construction by a telemetry-enabled run; the
        certifier, every current replica, and every replica created
        later (elastic joins) share the same recorder.
        """
        self.telemetry = telemetry
        certifier = getattr(self, "certifier", None)
        if certifier is not None:
            certifier.telemetry = telemetry
        for replica in self.replicas:
            replica.telemetry = telemetry
            if telemetry.auditor is not None:
                telemetry.auditor.on_attach(
                    replica.name, replica.db.latest_version
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every replica's applier thread."""
        for replica in self.replicas:
            replica.start()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain and stop every replica."""
        for replica in self.replicas:
            replica.stop(timeout)

    def quiesce(self, timeout: float = 30.0) -> bool:
        """Wait (wall *timeout* seconds) until every replica has applied
        every certified commit; True when the cluster converged."""
        target = self.certifier.latest_version
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.applier_errors():
                return False  # a dead applier can never converge
            if all(
                r.applied_version >= target and r.apply_backlog == 0
                for r in self.replicas
                if not r.failed  # crashed replicas are lost, not lagging
            ):
                return True
            time.sleep(0.005)
        return False

    def applier_errors(self) -> List[Tuple[str, BaseException]]:
        """(replica name, exception) for every applier thread that died."""
        return [
            (r.name, r.applier_error)
            for r in self.replicas
            if r.applier_error is not None
        ]

    def replica_versions(self) -> Tuple[int, ...]:
        """Each healthy replica's latest locally visible version
        (convergence check: identical everywhere after quiesce; crashed
        replicas lost their state and are excluded)."""
        return tuple(
            r.applied_version for r in self.replicas if not r.failed
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _record_snapshot_age(self, age: float) -> None:
        with self.metrics_lock:
            self.metrics.record_snapshot_age(age)

    def _record_certification(self) -> None:
        with self.metrics_lock:
            self.metrics.record_certification()
        with self._prune_lock:
            self._certifications_since_prune += 1
            due = self._certifications_since_prune >= _PRUNE_INTERVAL
            if due:
                self._certifications_since_prune = 0
        if due:
            self._prune()

    def _prune(self) -> None:
        """Periodic garbage collection; topology-specific."""

    def _route(self, client_id: int, is_update: bool,
               partitions: Tuple[int, ...] = ()) -> ClusterReplica:
        """Pay the LB delay, pick a replica, and claim residence on it.

        Re-routes if the pick started retiring between select and enter —
        the drain in :meth:`_retire` waits on the resident count, so once
        it observes zero *after* setting the retiring flag, no client can
        still slip a transaction onto the leaving replica.  *partitions*
        restricts routing to replicas hosting the transaction's data.
        """
        while True:
            self.clock.sleep(self.config.load_balancer_delay)
            replica = self.balancer.select(self.replicas, client_id,
                                           is_update, partitions)
            replica.enter()
            if not replica.retiring and not replica.failed:
                return replica
            replica.exit()

    # ------------------------------------------------------------------
    # Elastic membership (dynamic provisioning)
    # ------------------------------------------------------------------

    @property
    def member_count(self) -> int:
        """Replicas provisioned, healthy, and not retiring (controller
        view): a crashed replica is no longer a member."""
        return sum(
            1 for r in self.replicas if not r.retiring and not r.failed
        )

    def upgrade_targets(self) -> List[ClusterReplica]:
        """Replicas a rolling restart cycles (single-master: slaves only,
        the master cannot be detached)."""
        pool = getattr(self, "slaves", self.replicas)
        return [r for r in pool if not r.retiring and not r.failed]

    def _require_elastic_placement(self) -> None:
        """Partial partition maps pin the fleet: membership is static.

        (Partition re-placement on join/leave is the follow-on seam;
        until it exists, elastic membership and partial maps are
        mutually exclusive, loudly.)
        """
        if self.partition_map is not None and not self.partition_map.is_full:
            raise ConfigurationError(
                "elastic membership requires full replication; the "
                "partition map places data on a fixed fleet"
            )

    def add_replica(self, transfer_writesets: int = 16,
                    capacity: float = 1.0) -> ClusterReplica:
        """Grow the cluster by one live replica; topology-specific."""
        raise NotImplementedError(f"{type(self).__name__} is not elastic")

    def remove_replica(
        self,
        drain_timeout: float = 30.0,
        replica: Optional[ClusterReplica] = None,
        force: bool = False,
    ) -> ClusterReplica:
        """Drain (or, with ``force``, immediately detach) one replica."""
        raise NotImplementedError(f"{type(self).__name__} is not elastic")

    def _attach(self, replica: ClusterReplica) -> None:
        """Wire a freshly seeded replica into replication and routing.

        Must run under ``_order_lock``: publishes are blocked, so
        replaying the channel history above the replica's snapshot and
        then subscribing hands it every committed writeset exactly once.
        """
        telemetry = self.telemetry
        if telemetry is not None and telemetry.auditor is not None:
            # Baseline = the transferred snapshot; the replay below
            # delivers exactly the versions above it.
            telemetry.auditor.on_attach(
                replica.name, replica.db.latest_version
            )
        for writeset in self.channel.history_after(replica.db.latest_version):
            replica.enqueue_writeset(writeset, charged=True)
        self.channel.subscribe(replica)
        self.replicas = self.replicas + [replica]

    def _discard_failed_join(self, replica: ClusterReplica) -> None:
        """Roll back a join that failed before attaching.

        The replica was never subscribed, listed, or started; dropping
        its metric registrations (and releasing its name for reuse)
        leaves no trace, so a controller retrying every tick cannot
        accumulate dead replicas.
        """
        with self.metrics_lock:
            self.metrics.forget_resource(f"{replica.name}.cpu")
            self.metrics.forget_resource(f"{replica.name}.disk")
        self._members_created -= 1

    def _join_worker(self, replica: ClusterReplica, transfer_writesets: int) -> None:
        """Pay the join cost, then enter load-balancer rotation.

        State transfer is modeled as a bulk writeset replay: the joiner
        charges *transfer_writesets* writeset applications to its own
        resources, then waits for its applier to clear the replay
        backlog.  Runs on a daemon thread so ``add_replica`` returns as
        soon as replication is wired; failures surface through
        ``applier_error`` so quiesce reports them loudly.
        """
        try:
            sampler = WorkloadSampler(
                self.spec,
                rng_util.spawn(self._seed, "live-join", replica.name),
                distribution=self._distribution,
            )
            for _ in range(transfer_writesets):
                if replica.stopping:
                    return
                replica.cpu.serve(sampler.writeset_cpu())
                replica.disk.serve(sampler.writeset_disk())
            while replica.apply_backlog > 0 and not replica.stopping:
                time.sleep(0.002)
            replica.complete_join()
        except BaseException as exc:  # noqa: BLE001 — surfaced via quiesce
            replica.applier_error = exc

    def _retire(self, replica: ClusterReplica, drain_timeout: float) -> None:
        """Drain *replica* and detach it from replication and routing.

        A drain that outlasts *drain_timeout* rolls the retire back —
        the replica returns to rotation, fully functional — and raises,
        so a failed removal never leaves a zombie that is neither
        serving nor removable.
        """
        replica.begin_retire()
        deadline = time.monotonic() + drain_timeout
        while replica.active > 0:
            if time.monotonic() > deadline:
                replica.cancel_retire()
                raise SimulationError(
                    f"{replica.name} did not drain within {drain_timeout}s; "
                    f"removal rolled back"
                )
            time.sleep(0.002)
        self._force_detach(replica)

    def _force_detach(self, replica: ClusterReplica) -> None:
        """Detach *replica* immediately — no drain (failure replacement).

        In-flight client threads on it finish on their own (the replica
        object outlives the detach) but the cluster stops counting it:
        it leaves routing, replication, and the convergence check at
        once, and its queued backlog is discarded with it.
        """
        with self._order_lock:
            self.channel.unsubscribe(replica)
            self.replicas = [r for r in self.replicas if r is not replica]
        replica.stop(timeout=10.0, drain=False)

    def _acquire(self, replica: ClusterReplica) -> None:
        if replica.admission is not None:
            replica.admission.acquire()

    def _release(self, replica: ClusterReplica) -> None:
        if replica.admission is not None:
            replica.admission.release()

    def _serve_read_txn(
        self, replica: ClusterReplica, sampler: WorkloadSampler
    ) -> None:
        """Run one real read-only transaction at *replica*."""
        txn = replica.db.begin()
        replica.serve_read(sampler)
        replica.db.commit(txn)  # read-only: always commits

    def execute(
        self, sampler: WorkloadSampler, is_update: bool, client_id: int
    ) -> int:
        """Run one transaction to commit; returns the abort (retry) count."""
        raise NotImplementedError


class MultiMasterCluster(Cluster):
    """Figure 4: N symmetric live replicas + shared certifier service."""

    design = "multi-master"

    def __init__(self, spec, config, seed, clock, metrics,
                 distribution=EXPONENTIAL, lb_policy="least-loaded",
                 capacities=None, partition_map=None, certifier_spec=None):
        super().__init__(spec, config, seed, clock, metrics,
                         distribution, lb_policy, capacities, partition_map)
        # Per-certification service occupancy of the shared certifier
        # (the A/B knob against the sharded arm).  Zero — the default —
        # keeps the path exactly as it was before the spec existed.
        self._service_time = (
            0.0 if certifier_spec is None else certifier_spec.service_time
        )
        self.certifier = Certifier()
        for index in range(config.replicas):
            replica = self._make_replica(
                f"replica{index}", index, certifier=self.certifier,
                capacity=self._initial_capacity(index),
                hosted_partitions=self._hosted_for_index(index),
            )
            self.channel.subscribe(replica)
        self._members_created = config.replicas

    def add_replica(self, transfer_writesets: int = 16,
                    capacity: float = 1.0) -> ClusterReplica:
        """Grow the cluster by one live replica (elastic provisioning).

        Under the commit-order lock the joiner's engine is seeded with a
        state snapshot cloned from the freshest replica and the channel's
        retained history above that snapshot is bulk-enqueued before
        subscribing — every committed writeset reaches it exactly once.
        A join worker then pays the *transfer_writesets* bulk-replay
        charge and flips the replica into rotation once caught up.
        """
        self._require_elastic_placement()
        with self._membership_lock:
            name = f"replica{self._members_created}"
            self._members_created += 1
            replica = self._new_replica(name, name, certifier=self.certifier,
                                        capacity=capacity)
            replica.begin_join()
            try:
                with self._order_lock:
                    donors = [r for r in self.replicas if not r.failed]
                    if not donors:
                        raise ConfigurationError(
                            "no healthy donor replica for state transfer"
                        )
                    donor = max(donors, key=lambda r: r.applied_version)
                    version, state = donor.db.clone_state()
                    replica.db.seed_state(version, state)
                    self._attach(replica)
            except ConfigurationError:
                self._discard_failed_join(replica)
                raise
            replica.start()
        threading.Thread(
            target=self._join_worker, args=(replica, transfer_writesets),
            name=f"{name}-join", daemon=True,
        ).start()
        return replica

    def remove_replica(
        self,
        drain_timeout: float = 30.0,
        replica: Optional[ClusterReplica] = None,
        force: bool = False,
    ) -> ClusterReplica:
        """Shrink the cluster by one replica: drain, then detach.

        Without a target, picks the youngest fully-joined replica; at
        least one healthy replica always remains.  Blocks (wall time, up
        to *drain_timeout*) until the replica's in-flight transactions
        finish — unless ``force``, which detaches immediately (the
        replacement path for crashed replicas).
        """
        self._require_elastic_placement()
        with self._membership_lock:
            if replica is None:
                candidates = [
                    r for r in self.replicas
                    if not r.retiring and not r.joining and not r.failed
                ]
                if len(candidates) <= 1:
                    raise ConfigurationError("cannot remove the last replica")
                replica = candidates[-1]
            elif replica not in self.replicas:
                raise ConfigurationError(f"{replica.name} is not attached")
            survivors = [
                r for r in self.replicas
                if r is not replica and not r.retiring and not r.failed
            ]
            if not survivors:
                raise ConfigurationError(
                    "cannot remove the last healthy replica"
                )
            if force:
                self._force_detach(replica)
            else:
                self._retire(replica, drain_timeout)
        return replica

    def _prune(self):
        # Certifier history at or below every replica's oldest snapshot
        # can no longer conflict with anything: new transactions begin at
        # their replica's applied watermark, which oldest_active_snapshot
        # bounds from below (it only grows afterwards).
        floor = min(r.db.oldest_active_snapshot() for r in self.replicas)
        self.certifier.observe_snapshot(max(0, floor))

    def execute(self, sampler, is_update, client_id):
        telemetry = self.telemetry
        trace = (
            telemetry.tracer.start_trace()
            if telemetry is not None else None
        )
        route_start = self.clock.now()
        # Partitioned workloads pick their data before routing: the
        # transaction must land on a replica hosting what it touches.
        partitions = sampler.sample_partition_set(is_update)
        replica = self._route(client_id, is_update, partitions)
        if telemetry is not None:
            telemetry.count_route(replica.name, is_update)
            if trace is not None:
                telemetry.tracer.add_span(
                    trace, tel_schema.SPAN_ROUTE, route_start,
                    self.clock.now(), subject=replica.name,
                    policy=self.balancer.policy,
                )
        self._acquire(replica)
        aborts = 0
        try:
            if not is_update:
                # Reads execute entirely locally and always commit (§2:
                # GSI read-only transactions never abort).
                work_start = self.clock.now()
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, replica.applied_version,
                        self.certifier.latest_version, self.clock.now(),
                    )
                self._serve_read_txn(replica, sampler)
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.clock.now(), subject=replica.name,
                        kind="read",
                    )
                return aborts
            for attempt in range(1, self.config.max_retries + 1):
                # GSI: the snapshot is the replica's locally-latest
                # version, which may lag the certifier.
                txn = replica.db.begin()
                self._record_snapshot_age(
                    self.certifier.latest_version - txn.snapshot_version
                )
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, txn.snapshot_version,
                        self.certifier.latest_version, self.clock.now(),
                    )
                work_start = self.clock.now()
                replica.serve_update_attempt(sampler)
                # Each attempt re-samples its rows (re-execution of the
                # transaction logic against fresh data).
                sampled = sampler.sample_writeset(
                    txn.snapshot_version, partitions
                )
                for key, value in sampled.writes:
                    txn.write(key, value)
                # Stamp the partition footprint so certification is
                # scoped and propagation covers only hosting replicas.
                txn.partitions = sampled.partitions
                writeset = txn.writeset()
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.clock.now(), subject=replica.name,
                        kind="update", attempt=attempt,
                    )
                self._record_certification()
                certify_start = self.clock.now()
                if telemetry is not None:
                    telemetry.certify_begin()
                try:
                    with self._order_lock:
                        if self._service_time > 0.0:
                            # One service token for the whole system:
                            # every certification holds the commit-order
                            # lock for its service time, the serial
                            # bottleneck the sharded arm removes.
                            self.clock.sleep(self._service_time)
                        outcome = self.certifier.certify(writeset)
                        if outcome.committed:
                            if (telemetry is not None
                                    and telemetry.auditor is not None):
                                # Inside the order lock: commits reach
                                # the auditor in version order, before
                                # the publish triggers any delivery.
                                telemetry.auditor.on_commit(
                                    outcome.commit_version,
                                    writeset.partitions,
                                    replica.name,
                                )
                            if trace is not None:
                                # Appliers find the trace through the
                                # version map — register it before the
                                # publish makes the writeset poppable.
                                telemetry.tracer.note_version(
                                    outcome.commit_version, trace
                                )
                            self.channel.publish(
                                writeset.committed(outcome.commit_version),
                                origin=replica,
                            )
                    if telemetry is not None and outcome.committed:
                        telemetry.note_commit(
                            outcome.commit_version, self.clock.now()
                        )
                        if trace is not None:
                            telemetry.tracer.add_span(
                                trace, tel_schema.SPAN_PROPAGATE,
                                certify_start, self.clock.now(),
                                subject="channel",
                                fanout=len(self.replicas),
                            )
                    # The response (like the propagated writesets) reaches
                    # the replica one certification delay later (§6.3.2).
                    self.clock.sleep(self.config.certifier_delay)
                finally:
                    if telemetry is not None:
                        telemetry.certify_end()
                if trace is not None:
                    tags = {"attempt": attempt,
                            "committed": outcome.committed}
                    if not outcome.committed:
                        tags["abort"] = tel_schema.ABORT_WW_CONFLICT
                        tags["conflicts"] = len(outcome.conflicting_keys)
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_CERTIFY, certify_start,
                        self.clock.now(), subject="certifier", **tags,
                    )
                if outcome.committed:
                    replica.db.finish_remote(txn, outcome.commit_version)
                    return aborts
                replica.db.finish_remote(txn, None)
                aborts += 1
            raise RetryLimitExceeded(
                self.design, "update", self.config.max_retries
            )
        finally:
            self._release(replica)
            replica.exit()


class SingleMasterCluster(Cluster):
    """Figure 5: one live master for updates, N-1 slaves for reads."""

    design = "single-master"

    def __init__(self, spec, config, seed, clock, metrics,
                 distribution=EXPONENTIAL, lb_policy="least-loaded",
                 capacities=None, partition_map=None):
        super().__init__(spec, config, seed, clock, metrics,
                         distribution, lb_policy, capacities, partition_map)
        # The master executes every update, so it hosts every partition
        # implicitly; a partition map only constrains the slaves.
        self.master = self._make_replica(
            "master", "master", capacity=self._initial_capacity(0)
        )
        # The master's engine-local certifier is the system-wide one.
        self.certifier = self.master.db.certifier
        self.slaves = []
        for index in range(config.replicas - 1):
            slave = self._make_replica(
                f"slave{index}", index,
                capacity=self._initial_capacity(index + 1),
                hosted_partitions=self._hosted_for_index(index + 1),
            )
            self.channel.subscribe(slave)
            self.slaves.append(slave)
        self._members_created = config.replicas - 1

    def add_replica(self, transfer_writesets: int = 16,
                    capacity: float = 1.0) -> ClusterReplica:
        """Grow the system by one read-only slave (the master is fixed).

        The master is the natural state-transfer donor: its commits and
        channel publishes share the commit-order lock, so under that lock
        its snapshot is exactly the published watermark and the history
        replay is empty — new writesets simply start arriving.
        """
        self._require_elastic_placement()
        with self._membership_lock:
            name = f"slave{self._members_created}"
            self._members_created += 1
            slave = self._new_replica(name, name, capacity=capacity)
            slave.begin_join()
            try:
                with self._order_lock:
                    version, state = self.master.db.clone_state()
                    slave.db.seed_state(version, state)
                    self._attach(slave)
            except ConfigurationError:
                self._discard_failed_join(slave)
                raise
            self.slaves = self.slaves + [slave]
            slave.start()
        threading.Thread(
            target=self._join_worker, args=(slave, transfer_writesets),
            name=f"{name}-join", daemon=True,
        ).start()
        return slave

    def remove_replica(
        self,
        drain_timeout: float = 30.0,
        replica: Optional[ClusterReplica] = None,
        force: bool = False,
    ) -> ClusterReplica:
        """Drain (or force-detach) one slave — never the master."""
        self._require_elastic_placement()
        with self._membership_lock:
            if replica is None:
                candidates = [
                    s for s in self.slaves
                    if not s.retiring and not s.joining and not s.failed
                ]
                if not candidates:
                    raise ConfigurationError(
                        "no removable slave (the master cannot be removed)"
                    )
                slave = candidates[-1]
            elif replica is self.master:
                raise ConfigurationError("the master cannot be removed")
            elif replica not in self.slaves:
                raise ConfigurationError(
                    f"{replica.name} is not an attached slave"
                )
            else:
                slave = replica
            if force:
                self._force_detach(slave)
            else:
                self._retire(slave, drain_timeout)
            self.slaves = [s for s in self.slaves if s is not slave]
        return slave

    def _prune(self):
        # The master installs its own commits (no applier traffic), so its
        # store is vacuumed here; its certifier already prunes per commit
        # via the engine, and slave stores are vacuumed by their appliers.
        self.master.db.vacuum()

    def execute(self, sampler, is_update, client_id):
        telemetry = self.telemetry
        trace = (
            telemetry.tracer.start_trace()
            if telemetry is not None else None
        )
        route_start = self.clock.now()
        partitions = sampler.sample_partition_set(is_update)
        if not is_update:
            # Reads may only land on replicas hosting their partition
            # (the master hosts everything).
            replica = self._route(client_id, False, partitions)
            if telemetry is not None:
                telemetry.count_route(replica.name, False)
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_ROUTE, route_start,
                        self.clock.now(), subject=replica.name,
                        policy=self.balancer.policy,
                    )
            self._acquire(replica)
            try:
                work_start = self.clock.now()
                if telemetry is not None:
                    telemetry.observe_staleness(
                        replica.name, replica.applied_version,
                        self.certifier.latest_version, self.clock.now(),
                    )
                self._serve_read_txn(replica, sampler)
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.clock.now(), subject=replica.name,
                        kind="read",
                    )
                return 0
            finally:
                self._release(replica)
                replica.exit()

        self.clock.sleep(self.config.load_balancer_delay)
        master = self.master
        master.enter()
        if telemetry is not None:
            telemetry.count_route(master.name, True)
            if trace is not None:
                telemetry.tracer.add_span(
                    trace, tel_schema.SPAN_ROUTE, route_start,
                    self.clock.now(), subject=master.name,
                    policy="master",
                )
        self._acquire(master)
        aborts = 0
        try:
            for attempt in range(1, self.config.max_retries + 1):
                # Plain SI on the master: snapshot is its latest committed
                # version; the conflict window is the execution time here.
                txn = master.db.begin()
                if telemetry is not None:
                    # The master reads its own latest version, so this is
                    # the (near-zero) floor of the staleness distribution.
                    telemetry.observe_staleness(
                        master.name, txn.snapshot_version,
                        self.certifier.latest_version, self.clock.now(),
                    )
                work_start = self.clock.now()
                master.serve_update_attempt(sampler)
                sampled = sampler.sample_writeset(
                    txn.snapshot_version, partitions
                )
                for key, value in sampled.writes:
                    txn.write(key, value)
                # Stamp the partition footprint: slaves that host none of
                # these partitions apply only a version marker.
                txn.partitions = sampled.partitions
                if trace is not None:
                    telemetry.tracer.add_span(
                        trace, tel_schema.SPAN_EXECUTE, work_start,
                        self.clock.now(), subject=master.name,
                        kind="update", attempt=attempt,
                    )
                self._record_certification()
                certify_start = self.clock.now()
                if telemetry is not None:
                    telemetry.certify_begin()
                try:
                    with self._order_lock:
                        committed = master.db.commit(txn)
                        if (telemetry is not None
                                and telemetry.auditor is not None):
                            # Inside the order lock, before the publish:
                            # commits reach the auditor in version order.
                            telemetry.auditor.on_commit(
                                committed.commit_version,
                                committed.partitions,
                                master.name,
                            )
                        if trace is not None:
                            # Register the trace before the publish makes
                            # the writeset poppable by slave appliers.
                            telemetry.tracer.note_version(
                                committed.commit_version, trace
                            )
                        self.channel.publish(committed, origin=master)
                except TransactionAborted as exc:
                    if telemetry is not None:
                        telemetry.certify_end()
                        if trace is not None:
                            telemetry.tracer.add_span(
                                trace, tel_schema.SPAN_CERTIFY,
                                certify_start, self.clock.now(),
                                subject="certifier", attempt=attempt,
                                committed=False,
                                abort=tel_schema.ABORT_WW_CONFLICT,
                                conflicts=len(exc.conflicting_keys),
                            )
                    aborts += 1
                    continue
                if telemetry is not None:
                    telemetry.certify_end()
                    telemetry.note_commit(
                        committed.commit_version, self.clock.now()
                    )
                    if trace is not None:
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_CERTIFY, certify_start,
                            self.clock.now(), subject="certifier",
                            attempt=attempt, committed=True,
                        )
                        telemetry.tracer.add_span(
                            trace, tel_schema.SPAN_PROPAGATE,
                            certify_start, self.clock.now(),
                            subject="channel", fanout=len(self.slaves) + 1,
                        )
                return aborts
            raise RetryLimitExceeded(
                self.design, "update", self.config.max_retries
            )
        finally:
            self._release(master)
            master.exit()
