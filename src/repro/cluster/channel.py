"""The replication channel: in-order broadcast of committed writesets.

Commit order *is* the channel order: the cluster publishes each certified
writeset while still holding its commit-order lock, so every subscriber's
queue sees versions strictly ascending — the reliable FIFO delivery the
paper's update-propagation step assumes (§2), and the precondition of
:meth:`~repro.sidb.engine.SIDatabase.apply_writeset`, whose version store
rejects out-of-order installs.

Partial replication: the channel still broadcasts *every* committed
writeset to every subscriber — commit order is global — but a subscriber
that hosts none of a writeset's partitions applies only a version marker
(no payload, no resource charge; see
:meth:`~repro.cluster.replica.ClusterReplica.hosts_writeset`).  Keeping
the hosting decision at the replica keeps the channel a pure ordered
broadcast and the join/replay protocol below unchanged.

Elastic membership: the channel retains a bounded window of recently
published writesets.  A joining replica is wired in under the same
commit-order lock — seed its store from a donor snapshot at version ``V``,
bulk-enqueue :meth:`history_after` ``V`` (the writesets the snapshot
predates), then :meth:`subscribe` — so it receives every committed
writeset exactly once: nothing can be published between the replay and the
subscription.  :meth:`unsubscribe` (same lock) ends delivery atomically on
scale-down.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..core.errors import ConfigurationError
from ..sidb.writeset import Writeset


class ReplicationChannel:
    """Broadcasts committed writesets to subscribed replicas in order."""

    def __init__(self, history_limit: int = 4096) -> None:
        if history_limit < 1:
            raise ConfigurationError("history_limit must be >= 1")
        self._subscribers: List[object] = []
        self._last_published = 0
        self.published = 0
        #: Recently published writesets, oldest first, for elastic joins.
        self._history: Deque[Writeset] = deque(maxlen=history_limit)

    def subscribe(self, replica) -> None:
        """Register *replica* to receive every subsequently published
        writeset.  Either before traffic starts, or — for an elastic join
        — under the cluster's commit-order lock, right after replaying
        :meth:`history_after` the replica's snapshot version."""
        self._subscribers.append(replica)

    def unsubscribe(self, replica) -> None:
        """Stop delivering to *replica* (elastic scale-down).

        The caller must hold the cluster's commit-order lock so removal is
        atomic with respect to publishes.
        """
        try:
            self._subscribers.remove(replica)
        except ValueError:
            raise ConfigurationError(
                f"{getattr(replica, 'name', replica)!r} is not subscribed"
            ) from None

    def history_after(self, version: int) -> List[Writeset]:
        """Retained writesets with ``commit_version > version``, in order.

        Raises when the retained window no longer reaches back that far —
        the joiner's donor snapshot is too stale to catch up from (pick a
        fresher donor or raise ``history_limit``).
        """
        if version >= self._last_published:
            return []
        oldest = self._history[0].commit_version if self._history else None
        if oldest is None or version + 1 < oldest:
            raise ConfigurationError(
                f"replication history starts at {oldest}; cannot replay "
                f"from version {version + 1}"
            )
        return [ws for ws in self._history if ws.commit_version > version]

    def publish(self, writeset: Writeset, origin=None) -> None:
        """Deliver a certified writeset to every subscriber.

        The caller must hold the cluster's commit-order lock so publishes
        happen in commit-version order.  The *origin* replica executed the
        transaction locally, so its application is free (bookkeeping and
        installation only); every other replica is charged the writeset's
        CPU/disk demands.
        """
        if writeset.commit_version <= self._last_published:
            raise ConfigurationError(
                f"writeset {writeset.commit_version} published out of order "
                f"(latest is {self._last_published})"
            )
        self._last_published = writeset.commit_version
        self.published += 1
        self._history.append(writeset)
        for replica in self._subscribers:
            replica.enqueue_writeset(writeset, charged=replica is not origin)
