"""The replication channel: in-order broadcast of committed writesets.

Commit order *is* the channel order: the cluster publishes each certified
writeset while still holding its commit-order lock, so every subscriber's
queue sees versions strictly ascending — the reliable FIFO delivery the
paper's update-propagation step assumes (§2), and the precondition of
:meth:`~repro.sidb.engine.SIDatabase.apply_writeset`, whose version store
rejects out-of-order installs.
"""

from __future__ import annotations

from typing import List

from ..core.errors import ConfigurationError
from ..sidb.writeset import Writeset


class ReplicationChannel:
    """Broadcasts committed writesets to subscribed replicas in order."""

    def __init__(self) -> None:
        self._subscribers: List[object] = []
        self._last_published = 0
        self.published = 0

    def subscribe(self, replica) -> None:
        """Register *replica* to receive every subsequently published
        writeset (must happen before traffic starts)."""
        self._subscribers.append(replica)

    def publish(self, writeset: Writeset, origin=None) -> None:
        """Deliver a certified writeset to every subscriber.

        The caller must hold the cluster's commit-order lock so publishes
        happen in commit-version order.  The *origin* replica executed the
        transaction locally, so its application is free (bookkeeping and
        installation only); every other replica is charged the writeset's
        CPU/disk demands.
        """
        if writeset.commit_version <= self._last_published:
            raise ConfigurationError(
                f"writeset {writeset.commit_version} published out of order "
                f"(latest is {self._last_published})"
            )
        self._last_published = writeset.commit_version
        self.published += 1
        for replica in self._subscribers:
            replica.enqueue_writeset(writeset, charged=replica is not origin)
