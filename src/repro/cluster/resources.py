"""Wall-clock emulation of a replica's CPU and disk.

Each resource is a single server: holding its mutex for the (scaled)
service duration *is* the service, so queueing delay under contention is
real waiting on a real lock rather than a formula.  Service order is the
lock's acquisition order — effectively FIFO, which for exponential service
times yields the same mean behaviour as the simulator's processor-sharing
CPU (BCMP insensitivity), and matches its FIFO disk exactly.

Busy time is tracked in virtual seconds from *measured* elapsed time, so
sleep overshoot shows up honestly in the reported utilizations.  The class
exposes ``busy_time_now()`` with the same contract as the simulator's
resources, letting :class:`~repro.simulator.stats.MetricsCollector` watch
live and simulated resources interchangeably.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..core.errors import ConfigurationError
from .clock import VirtualClock


class LiveResource:
    """A single-server resource emulated with a mutex and scaled sleeps.

    ``rate`` models heterogeneous capacity exactly as the simulator's
    resources do: a rate-2 server finishes the same sampled work in half
    the (virtual) time.
    """

    def __init__(self, clock: VirtualClock, name: str,
                 rate: float = 1.0) -> None:
        if rate <= 0.0:
            raise ConfigurationError(f"{name}: capacity rate must be positive")
        self._clock = clock
        self.name = name
        self.rate = rate
        # Held for the duration of each service (the queue is this lock's
        # wait list); _meta guards only the busy-time accounting.
        self._service_lock = threading.Lock()
        self._meta = threading.Lock()
        self._busy_virtual = 0.0
        self._busy_since: Optional[float] = None
        self.completions = 0
        # Unscaled service demand of completed services: the delta ratio
        # work_done / busy_time over a window recovers the effective rate
        # multiplier, mix-independently (mirrors the simulator's
        # ResourceStats.work_done, so the capacity estimator watches live
        # and simulated resources interchangeably).
        self.work_done = 0.0

    def serve(self, virtual_duration: float) -> None:
        """Occupy the resource for *virtual_duration* virtual seconds of
        sampled work (scaled down by the capacity ``rate``)."""
        demand = virtual_duration
        virtual_duration = virtual_duration / self.rate
        if virtual_duration <= 0.0:
            return
        with self._service_lock:
            started = self._clock.now()
            with self._meta:
                self._busy_since = started
            self._clock.sleep(virtual_duration)
            ended = self._clock.now()
            with self._meta:
                self._busy_virtual += ended - started
                self._busy_since = None
                self.completions += 1
                self.work_done += demand

    def busy_time_now(self) -> float:
        """Cumulative busy time in virtual seconds, including any
        in-progress service up to now."""
        with self._meta:
            busy = self._busy_virtual
            if self._busy_since is not None:
                busy += max(0.0, self._clock.now() - self._busy_since)
            return busy
