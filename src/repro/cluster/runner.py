"""Drive a live cluster and collect paper-style measurements.

:func:`run_cluster` is the live counterpart of
:func:`repro.simulator.runner.simulate`: same workload specs, same
:class:`ReplicationConfig`, same metrics schema, same warm-up-then-window
methodology — but the transactions, the certification, and the writeset
propagation all actually happen, on threads, against real SI engines.
All durations are *virtual* seconds (see :mod:`repro.cluster.clock`);
``time_scale`` maps them onto wall-clock sleeps.

Traffic models:

* **closed-loop** (default) — one thread per client: think (exponential),
  submit, wait for the response (§3.1);
* **open-loop** (``arrival_rate``) — a Poisson arrival thread spawns a
  short-lived worker per transaction, no think-time feedback
  ([Schroeder 2006]).

Fault injection reuses :class:`repro.simulator.faults.ReplicaFault`
schedules: a fault thread takes the replica out of rotation at ``start``
and brings it back at ``start + downtime``; its applier defers writesets
while down and catches up on recovery.

After the drivers stop the runner **quiesces** the cluster and records
every replica's final version — the replication-correctness check that all
replicas converged to identical state.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import rng as rng_util
from ..core.errors import ConfigurationError, SimulationError
from ..core.params import ReplicationConfig
from ..core.results import OperatingPoint
from ..core.rng import DEFAULT_SEED
from ..sidb.certifier_api import resolve_certifier_spec
from ..simulator.faults import (
    BROWNOUT, CRASH, ReplicaFault, scale_replica_rates, validate_faults,
)
from ..simulator.runner import MULTI_MASTER, SINGLE_MASTER
from ..simulator.sampling import DISTRIBUTIONS, EXPONENTIAL, WorkloadSampler
from ..simulator.stats import MetricsCollector
from ..simulator.systems import LB_POLICIES, LEAST_LOADED
from ..telemetry import Telemetry, active_config
from ..workloads.spec import WorkloadSpec
from .clock import VirtualClock
from .cluster import Cluster, MultiMasterCluster, SingleMasterCluster
from .sharded import ShardedMultiMasterCluster

#: System designs the live runtime can assemble.
CLUSTER_DESIGNS = (MULTI_MASTER, SINGLE_MASTER)

_CLUSTER_CLASSES = {
    MULTI_MASTER: MultiMasterCluster,
    SINGLE_MASTER: SingleMasterCluster,
}


@dataclass(frozen=True)
class ClusterResult:
    """Everything measured during one live cluster run.

    Field-compatible with :class:`repro.simulator.runner.SimulationResult`
    where the metrics overlap, plus the live-only convergence evidence.
    """

    design: str
    replicas: int
    point: OperatingPoint
    read_throughput: float
    update_throughput: float
    mean_read_response: float
    mean_update_response: float
    mean_snapshot_age: float
    certifier_request_rate: float
    #: Whole-run certifier counters — warm-up AND post-window drain
    #: included (the simulator's counterparts include warm-up only, as it
    #: has no drain).  They pair with :attr:`final_versions` for the
    #: replication-correctness identity ``final_version == certifications
    #: - aborts``; for window-rate comparisons use
    #: :attr:`certifier_request_rate` and :meth:`abort_rate` instead.
    total_certifications: int = 0
    total_certification_aborts: int = 0
    utilizations: Dict[str, float] = field(default_factory=dict)
    committed_transactions: int = 0
    window: float = 0.0
    throughput_timeline: Sequence[float] = ()
    #: Wall-to-virtual scale the run used.
    time_scale: float = 1.0
    #: Each replica's latest locally visible version after quiesce.
    final_versions: Tuple[int, ...] = ()
    #: True when every replica applied every certified commit in time —
    #: with :attr:`final_versions` identical, replication was correct.
    converged: bool = False
    #: :class:`repro.telemetry.TelemetryResult` when the run was
    #: telemetry-enabled; ``None`` otherwise (the default keeps results
    #: from older cached runs loading unchanged).
    telemetry: object = None

    @property
    def throughput(self) -> float:
        """Committed transactions per (virtual) second."""
        return self.point.throughput

    @property
    def response_time(self) -> float:
        """Mean response time (virtual seconds)."""
        return self.point.response_time

    @property
    def abort_rate(self) -> float:
        """Measured update-attempt abort fraction."""
        return self.point.abort_rate

    @property
    def state_converged(self) -> bool:
        """True when all replicas reached the identical final version."""
        return self.converged and len(set(self.final_versions)) <= 1


class _Drivers:
    """Owns the traffic threads of one run."""

    #: Finished threads are pruned from the registry once it grows past
    #: this, so open-loop runs (one thread per transaction) stay O(live).
    _PRUNE_THRESHOLD = 256

    def __init__(self) -> None:
        self.stop = threading.Event()
        self.threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self.errors: List[BaseException] = []

    def launch(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        with self._lock:
            if len(self.threads) > self._PRUNE_THRESHOLD:
                self.threads = [t for t in self.threads if t.is_alive()]
            self.threads.append(thread)
        thread.start()

    def join(self, timeout: float) -> List[threading.Thread]:
        """Signal stop and wait (one shared *timeout* budget across all
        threads); returns the threads still alive afterwards."""
        self.stop.set()
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                pending = [t for t in self.threads if t.is_alive()]
            if not pending:
                return []
            for thread in pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    with self._lock:
                        return [t for t in self.threads if t.is_alive()]
                thread.join(remaining)
            # Re-scan: the open-loop source may have launched workers
            # while this pass was joining.

    def guard(self, fn):
        """Run *fn*, capturing the first exception for re-raise on join."""
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 — reported to the runner
            self.errors.append(exc)
            self.stop.set()


def _closed_loop_client(
    cluster: Cluster,
    sampler: WorkloadSampler,
    client_id: int,
    drivers: _Drivers,
) -> None:
    clock, metrics = cluster.clock, cluster.metrics
    while not drivers.stop.is_set():
        clock.sleep(sampler.think_time())
        if drivers.stop.is_set():
            return
        is_update = sampler.next_is_update()
        started = clock.now()
        aborts = cluster.execute(sampler, is_update, client_id)
        now = clock.now()
        with cluster.metrics_lock:
            metrics.record_commit(is_update, now - started, aborts, now=now)
        if cluster.telemetry is not None:
            cluster.telemetry.count_commit(is_update)


def _open_loop_source(
    cluster: Cluster, rate: float, seed: int, drivers: _Drivers,
    trace=None,
) -> None:
    """Poisson arrival source: homogeneous at *rate*, or — when *trace*
    is given — non-homogeneous following the trace's rate curve, sampled
    by thinning against its peak [Lewis & Shedler 1979].  The two modes
    use distinct RNG stream names so adding a trace never perturbs
    existing fixed-rate runs."""
    clock = cluster.clock
    if trace is None:
        arrival_rng = rng_util.spawn(seed, "live-open-arrivals")
        peak, client_stream, txn_prefix = rate, "live-open-client", "open-txn"
    else:
        arrival_rng = rng_util.spawn(seed, "live-trace-arrivals")
        peak = trace.max_rate
        client_stream, txn_prefix = "live-trace-client", "trace-txn"
    sequence = 0
    while not drivers.stop.is_set():
        clock.sleep(float(arrival_rng.exponential(1.0 / peak)))
        if drivers.stop.is_set():
            return
        if (trace is not None
                and not trace.accept_arrival(arrival_rng, clock.now())):
            continue  # thinned-out candidate
        sequence += 1
        sampler = WorkloadSampler(
            cluster.spec,
            rng_util.spawn(seed, client_stream, sequence),
            distribution=cluster._distribution,
            partition_map=cluster.partition_map,
        )
        drivers.launch(
            lambda s=sampler, i=sequence: drivers.guard(
                lambda: _one_shot(cluster, s, i)
            ),
            name=f"{txn_prefix}-{sequence}",
        )


def _one_shot(cluster: Cluster, sampler: WorkloadSampler, sequence: int) -> None:
    clock, metrics = cluster.clock, cluster.metrics
    is_update = sampler.next_is_update()
    started = clock.now()
    aborts = cluster.execute(sampler, is_update, sequence)
    now = clock.now()
    with cluster.metrics_lock:
        metrics.record_commit(is_update, now - started, aborts, now=now)
    if cluster.telemetry is not None:
        cluster.telemetry.count_commit(is_update)


def _telemetry_sampler(cluster: Cluster, recorder, drivers: _Drivers) -> None:
    """Snapshot fleet state every (virtual) snapshot interval."""
    interval = max(
        cluster.clock.to_wall(recorder.config.snapshot_interval), 0.001
    )
    while not drivers.stop.wait(interval):
        recorder.sample_fleet(
            cluster.clock.now(), cluster.replicas, cluster.certifier
        )


def _fault_process(
    cluster: Cluster, fault: ReplicaFault, drivers: _Drivers,
    recorder=None,
) -> None:
    replica = cluster.replicas[fault.replica_index]
    scale = cluster.clock.time_scale
    if drivers.stop.wait(fault.start * scale):
        return
    if fault.kind == CRASH:
        # Crash: the replica stops consuming writesets for good (its
        # state is lost); only replacement restores redundancy.
        replica.crash()
        if recorder is not None:
            recorder(cluster.clock.now(), CRASH, replica.name)
        return
    if fault.kind == BROWNOUT:
        # Gray failure: the replica keeps serving, but every service
        # started while the brownout is active runs at `severity` times
        # the configured speed.  Membership never changes; only the
        # capacity estimator can see this.
        scale_replica_rates(replica, fault.severity)
        if recorder is not None:
            recorder(cluster.clock.now(), BROWNOUT, replica.name)
        drivers.stop.wait(fault.downtime * scale)
        # Restore even when the run is over so quiesce drains at speed.
        scale_replica_rates(replica, 1.0 / fault.severity)
        if recorder is not None:
            recorder(cluster.clock.now(), "brownout-end", replica.name)
        return
    replica.available = False
    if recorder is not None:
        recorder(cluster.clock.now(), "down", replica.name)
    drivers.stop.wait(fault.downtime * scale)
    # Recover even when the run is over so quiesce can drain the backlog.
    replica.available = True
    if recorder is not None:
        recorder(cluster.clock.now(), "up", replica.name)


def run_cluster(
    spec: WorkloadSpec,
    config: ReplicationConfig,
    design: str = MULTI_MASTER,
    seed: int = DEFAULT_SEED,
    warmup: float = 5.0,
    duration: float = 20.0,
    time_scale: float = 0.1,
    distribution: str = EXPONENTIAL,
    lb_policy: str = LEAST_LOADED,
    faults: Sequence[ReplicaFault] = (),
    arrival_rate: Optional[float] = None,
    quiesce_timeout: float = 30.0,
    capacities: Optional[Sequence[float]] = None,
    partition_map=None,
    telemetry=None,
    certifier=None,
) -> ClusterResult:
    """Execute *spec* on a live *design* cluster and measure steady state.

    *warmup* and *duration* are virtual seconds; the wall cost is
    ``(warmup + duration) * time_scale`` plus drain time.  See
    :func:`repro.simulator.runner.simulate` for the shared parameter
    semantics (*faults*, *arrival_rate*, *lb_policy*, *distribution*,
    *partition_map*, *telemetry*, *certifier*).  Telemetry samples the
    fleet from a dedicated thread on the configured virtual interval and
    attaches a :class:`repro.telemetry.TelemetryResult`
    (``pillar="cluster"``) with the same metric-name schema the
    simulator emits.  ``certifier="sharded"`` (or a sharded
    :class:`~repro.sidb.certifier_api.CertifierSpec`) assembles
    :class:`~repro.cluster.sharded.ShardedMultiMasterCluster` —
    per-partition certifier shards, channels and order locks — while
    ``None`` keeps the single shared certifier byte-identical to before
    the sharded path existed.
    """
    certifier_spec = resolve_certifier_spec(certifier)
    if design not in _CLUSTER_CLASSES:
        raise ConfigurationError(
            f"unknown design {design!r}; one of {CLUSTER_DESIGNS}"
        )
    if distribution not in DISTRIBUTIONS:
        raise ConfigurationError(f"unknown distribution {distribution!r}")
    if lb_policy not in LB_POLICIES:
        raise ConfigurationError(f"unknown lb_policy {lb_policy!r}")
    if warmup < 0 or duration <= 0:
        raise ConfigurationError("warmup must be >= 0 and duration > 0")
    if arrival_rate is not None and arrival_rate <= 0:
        raise ConfigurationError(
            f"arrival rate must be positive, got {arrival_rate}"
        )

    clock = VirtualClock(time_scale)
    metrics = MetricsCollector()
    if certifier_spec is not None and not certifier_spec.is_default:
        if design != MULTI_MASTER:
            raise ConfigurationError(
                "the certifier axis is multi-master only (the certifier "
                f"spec {certifier_spec.kind!r} cannot apply to {design!r})"
            )
        if certifier_spec.is_sharded:
            cluster = ShardedMultiMasterCluster(
                spec, config, seed, clock, metrics,
                distribution=distribution, lb_policy=lb_policy,
                capacities=capacities, partition_map=partition_map,
                certifier_spec=certifier_spec,
            )
        else:
            cluster = MultiMasterCluster(
                spec, config, seed, clock, metrics,
                distribution=distribution, lb_policy=lb_policy,
                capacities=capacities, partition_map=partition_map,
                certifier_spec=certifier_spec,
            )
    else:
        cluster = _CLUSTER_CLASSES[design](
            spec, config, seed, clock, metrics,
            distribution=distribution, lb_policy=lb_policy,
            capacities=capacities, partition_map=partition_map,
        )
    telemetry_config = active_config(telemetry)
    recorder = None
    if telemetry_config is not None:
        recorder = Telemetry(telemetry_config, pillar="cluster")
        cluster.attach_telemetry(recorder)
    if faults:
        from ..partition.placement import check_faults_against_map

        check_faults_against_map(faults, cluster.partition_map)
    cluster.start()

    drivers = _Drivers()
    if recorder is not None:
        drivers.launch(
            lambda: drivers.guard(
                lambda: _telemetry_sampler(cluster, recorder, drivers)
            ),
            name="telemetry-sampler",
        )
    for fault in validate_faults(faults, config.replicas, design):
        drivers.launch(
            lambda f=fault: _fault_process(cluster, f, drivers),
            name=f"fault-replica{fault.replica_index}",
        )
    if arrival_rate is None:
        for client_id in range(config.total_clients):
            sampler = WorkloadSampler(
                spec,
                rng_util.spawn(seed, "live-client", client_id),
                distribution=distribution,
                partition_map=cluster.partition_map,
            )
            drivers.launch(
                lambda s=sampler, i=client_id: drivers.guard(
                    lambda: _closed_loop_client(cluster, s, i, drivers)
                ),
                name=f"client-{client_id}",
            )
    else:
        drivers.launch(
            lambda: drivers.guard(
                lambda: _open_loop_source(cluster, arrival_rate, seed, drivers)
            ),
            name="open-arrivals",
        )

    try:
        drivers.stop.wait(clock.to_wall(warmup))
        with cluster.metrics_lock:
            metrics.begin_window(clock.now())
        drivers.stop.wait(clock.to_wall(duration))
        with cluster.metrics_lock:
            metrics.end_window(clock.now())
        # Allow in-flight transactions (bounded by response times) to
        # drain; clients re-check the stop flag after each transaction.
        still_running = drivers.join(timeout=max(10.0, clock.to_wall(60.0)))
        if drivers.errors:
            raise drivers.errors[0]
        if still_running:
            # Quiescing now would race live transactions and could
            # misreport correct replication as divergence — fail loudly
            # instead (typically open-loop load far past the knee).
            raise SimulationError(
                f"{len(still_running)} traffic thread(s) still running "
                "after the drain timeout; the offered load exceeds what "
                "the cluster can drain — lower arrival_rate or clients"
            )
        converged = cluster.quiesce(timeout=quiesce_timeout)
        if recorder is not None:
            # One closing sample so end-of-run (post-quiesce) state is
            # always captured, even on runs shorter than the interval.
            recorder.sample_fleet(
                clock.now(), cluster.replicas, cluster.certifier
            )
        final_versions = cluster.replica_versions()
        dead_appliers = cluster.applier_errors()
        if dead_appliers:
            name, error = dead_appliers[0]
            raise SimulationError(
                f"applier thread of {name} died: {error!r}"
            ) from error
    finally:
        drivers.stop.set()
        cluster.shutdown()

    utilizations = metrics.utilizations()
    busiest: Dict[str, float] = {}
    for key, value in utilizations.items():
        kind = key.rsplit(".", 1)[-1]
        busiest[kind] = max(busiest.get(kind, 0.0), value)
    point = OperatingPoint(
        throughput=metrics.throughput(),
        response_time=metrics.mean_response_time(),
        abort_rate=metrics.abort_rate(),
        utilization=busiest,
    )
    return ClusterResult(
        design=design,
        replicas=config.replicas,
        point=point,
        read_throughput=metrics.read_throughput(),
        update_throughput=metrics.update_throughput(),
        mean_read_response=metrics.response_read.mean,
        mean_update_response=metrics.response_update.mean,
        mean_snapshot_age=metrics.snapshot_age.mean,
        certifier_request_rate=metrics.certifier_request_rate(),
        total_certifications=cluster.certifier.certifications,
        total_certification_aborts=cluster.certifier.aborts,
        utilizations=utilizations,
        committed_transactions=metrics.committed,
        window=metrics.window,
        throughput_timeline=tuple(metrics.throughput_timeline()),
        time_scale=time_scale,
        final_versions=final_versions,
        converged=converged,
        telemetry=None if recorder is None else recorder.result(),
    )
