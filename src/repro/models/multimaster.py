"""Analytical model of the multi-master replicated database (§3.2.1, §3.3.2).

One replica is modelled as a closed separable network (Figure 1 of the
paper): CPU and disk are queueing centers; the load balancer and the
certifier are delay centers; clients think for ``Z`` seconds between
transactions.  All ``N`` replicas are identical under perfect load
balancing, so the model solves one replica with ``C`` clients and scales
throughput by ``N``.

The subtlety is the **conflict-window fixed point**: the per-transaction
demand depends on the abort rate ``AN``, which depends on the conflict
window ``CW(N)``, which depends on residence times, which depend on the
demand.  Following §4.1.1 we drive the exact MVA recurrence one client at a
time and seed iteration ``i+1`` with the conflict window observed at
iteration ``i``.  An optional mode iterates each population step to a
converged fixed point instead (ablation; the paper notes the one-step lag
"slightly underestimates the abort probability").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ConfigurationError, ConvergenceError
from ..core.params import (
    CPU,
    DISK,
    ReplicationConfig,
    StandaloneProfile,
)
from ..core.results import OperatingPoint, Prediction, ReplicaBreakdown
from ..queueing.mva import MVAStepper
from ..queueing.network import ClosedNetwork, delay_center, queueing_center
from ..sidb.certifier_api import resolve_certifier_spec
from .aborts import multimaster_abort_rate, partition_abort_mixture
from .demands import multimaster_demand

#: Name of the load-balancer delay center.
LB = "load_balancer"
#: Name of the certifier delay center.
CERTIFIER = "certifier"
#: Name of the certification *queueing* center: present only when a
#: :class:`~repro.sidb.certifier_api.CertifierSpec` gives the service a
#: positive per-certification occupancy, turning it from a pure delay
#: into a contended resource (the sharding comparison's bottleneck).
CERTIFY_SERVICE = "certify_service"

#: How the conflict window is updated across MVA iterations.
CW_ONE_STEP_LAG = "one_step_lag"  # the paper's scheme (§4.1.1)
CW_FIXED_POINT = "fixed_point"  # converged fixed point per population step
_CW_MODES = (CW_ONE_STEP_LAG, CW_FIXED_POINT)


@dataclass(frozen=True)
class MultiMasterOptions:
    """Tuning knobs for the multi-master solver."""

    #: Conflict-window update scheme; see module docstring.
    cw_mode: str = CW_ONE_STEP_LAG
    #: Convergence tolerance on AN for the fixed-point mode.
    tolerance: float = 1e-10
    #: Iteration cap for the fixed-point mode.
    max_fixed_point_iterations: int = 200

    def __post_init__(self) -> None:
        if self.cw_mode not in _CW_MODES:
            raise ConfigurationError(
                f"cw_mode must be one of {_CW_MODES}, got {self.cw_mode!r}"
            )


def _build_network(
    config: ReplicationConfig,
    write_fraction: float,
    certify_rounds: float = 1.0,
    service_demand: float = 0.0,
) -> ClosedNetwork:
    centers = [
        queueing_center(CPU, 0.0),
        queueing_center(DISK, 0.0),
        delay_center(LB, config.load_balancer_delay),
        # Only update transactions visit the certifier, so its
        # per-transaction demand carries a visit ratio of Pw.
        # *certify_rounds* charges the sharded path's cross-partition
        # coordination round (1 + x on average); exactly 1.0 — an exact
        # multiplicative identity — on the global path.
        delay_center(
            CERTIFIER,
            write_fraction * config.certifier_delay * certify_rounds,
        ),
    ]
    if service_demand > 0.0:
        centers.append(queueing_center(CERTIFY_SERVICE, service_demand))
    return ClosedNetwork(centers=tuple(centers), think_time=config.think_time)


def _shard_weights(partition_weights, partitions):
    """Normalised per-shard load weights for the sharded model path."""
    if partition_weights is not None:
        weights = [float(w) for w in partition_weights]
        if not weights or any(w < 0.0 for w in weights):
            raise ConfigurationError(
                f"partition weights must be non-negative and non-empty, "
                f"got {partition_weights!r}"
            )
        total = sum(weights)
        if total <= 0.0:
            raise ConfigurationError("partition weights must sum to > 0")
        return tuple(w / total for w in weights)
    if partitions is None or partitions < 2:
        raise ConfigurationError(
            "the sharded certifier model needs partitions >= 2 (pass "
            "partitions= or partition_weights=); use the global "
            "certifier for unpartitioned predictions"
        )
    return tuple(1.0 / partitions for _ in range(partitions))


def predict_multimaster(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    options: Optional[MultiMasterOptions] = None,
    partition_map=None,
    cross_partition_fraction: float = 0.0,
    partition_weights=None,
    certifier=None,
    partitions: Optional[int] = None,
) -> Prediction:
    """Predict throughput/response time of an N-replica multi-master system.

    Inputs are purely standalone measurements (*profile*) plus deployment
    parameters (*config*), per the paper's headline claim.

    *partition_map* extends the model to partial replication: the
    ``(N-1) * Pw * ws`` update-propagation term of §3.3.2 becomes
    ``(h-1) * Pw * ws``, where ``h`` is the expected number of replicas
    hosting one update's writeset under the map (each replica's update
    load is the sum over its hosted partitions; a balanced placement
    makes replicas symmetric, which is what the one-replica MVA network
    assumes).  The conflict-window/abort algebra is left untouched: the
    updatable set splits evenly across partitions, so under uniform
    weights the pairwise row-conflict probability is unchanged
    (``(1/P) * (P/DbUpdateSize) = 1/DbUpdateSize``); skewed weights
    concentrate conflicts and are probed by the placement-ablation
    scenario rather than modelled.

    *certifier* selects the certification protocol (a
    :class:`~repro.sidb.certifier_api.CertifierSpec`, spec name, or
    ``None`` for the default global certifier).  The global path is
    byte-identical to the historical model.  The sharded path charges a
    second certification round for the *cross_partition_fraction* of
    updates that must coordinate across shards, divides any positive
    per-certification ``service_time`` across shards (weighted by the
    inverse Simpson concentration of *partition_weights*, so skew erodes
    the parallelism), and replaces the abort algebra with the
    skew-aware :func:`~repro.models.aborts.partition_abort_mixture`.
    """
    options = options or MultiMasterOptions()
    mix = profile.mix
    demands = profile.demands
    n = config.replicas

    certifier_spec = resolve_certifier_spec(certifier)
    sharded = certifier_spec is not None and certifier_spec.is_sharded
    service_time = 0.0 if certifier_spec is None else certifier_spec.service_time
    certify_rounds = 1.0
    shard_weights = None
    if sharded:
        shard_weights = _shard_weights(partition_weights, partitions)
        # Cross-partition commits pay one extra coordination round
        # between the home shard and the other touched shards.
        certify_rounds = 1.0 + max(0.0, float(cross_partition_fraction))

    # A positive per-certification occupancy turns the certifier into a
    # queueing center shared by all N replicas' update streams; the
    # one-replica MVA network sees it scaled by N so the single modelled
    # replica saturates exactly when the system-wide service would.
    service_demand = 0.0
    if service_time > 0.0 and mix.write_fraction > 0.0:
        service_demand = n * mix.write_fraction * service_time
        if sharded:
            # Sharding splits the service across shards; the effective
            # parallelism is the inverse Simpson index of the load
            # weights (= P when uniform, -> 1 under extreme skew).
            s_eff = 1.0 / sum(w * w for w in shard_weights)
            service_demand *= certify_rounds / s_eff

    # Certification latency seen by one update transaction: propagation
    # delay per round plus its own service occupancy.  Exactly
    # ``config.certifier_delay`` on the default path.
    certify_latency = config.certifier_delay * certify_rounds + service_time

    if sharded:
        weights = shard_weights

        def abort_fn(conflict_window: float) -> float:
            if profile.update_response_time <= 0.0:
                if profile.abort_rate == 0.0:
                    return 0.0
                raise ConfigurationError("L(1) must be positive when A1 > 0")
            exposure = n * conflict_window / profile.update_response_time
            return partition_abort_mixture(profile.abort_rate, exposure, weights)

    else:

        def abort_fn(conflict_window: float) -> float:
            return multimaster_abort_rate(
                profile.abort_rate, n, conflict_window,
                profile.update_response_time,
            )

    writeset_fanin = None
    if partition_map is not None:
        if partition_map.replicas != n:
            raise ConfigurationError(
                f"partition map places over {partition_map.replicas} "
                f"replicas but the deployment has {n}"
            )
        fanout = partition_map.expected_update_fanout(
            cross_partition_fraction, partition_weights
        )
        writeset_fanin = max(0.0, fanout - 1.0)

    network = _build_network(
        config,
        mix.write_fraction,
        certify_rounds=certify_rounds,
        service_demand=service_demand,
    )
    stepper = MVAStepper(network)

    # Initial conflict window: the standalone window plus certification,
    # evaluated before any queueing builds up.
    abort_rate = 0.0
    conflict_window = profile.update_response_time + certify_latency
    if mix.write_fraction > 0.0:
        abort_rate = abort_fn(conflict_window)

    solution = None
    for _ in range(config.clients_per_replica):
        demand = multimaster_demand(demands, mix, n, abort_rate,
                                    writeset_fanin=writeset_fanin)
        stepper.set_demands({CPU: demand.cpu, DISK: demand.disk})
        solution = stepper.step()
        if mix.write_fraction > 0.0:
            conflict_window, abort_rate = _update_conflict_state(
                profile, config, solution, options, abort_rate,
                abort_fn, certify_latency,
            )

    assert solution is not None
    system_throughput = n * solution.throughput
    point = OperatingPoint(
        throughput=system_throughput,
        response_time=solution.response_time,
        abort_rate=abort_rate,
        utilization=dict(solution.utilization),
    )
    breakdown = ReplicaBreakdown(
        role="replica",
        throughput=solution.throughput,
        clients=float(config.clients_per_replica),
        utilization=dict(solution.utilization),
        residence_times=dict(solution.residence_times),
    )
    return Prediction(
        replicas=n,
        point=point,
        conflict_window=conflict_window if mix.write_fraction > 0.0 else 0.0,
        breakdown=(breakdown,),
    )


def _update_conflict_state(
    profile, config, solution, options, abort_rate, abort_fn, certify_latency
):
    """Recompute (CW, AN) from the latest MVA solution."""
    if options.cw_mode == CW_ONE_STEP_LAG:
        cw = _conflict_window(profile, config, solution, abort_rate,
                              certify_latency)
        an = abort_fn(cw)
        return cw, an

    # Fixed-point mode: iterate CW -> AN -> update-demand residence until
    # the abort rate stabilises for this population.
    an = abort_rate
    cw = _conflict_window(profile, config, solution, an, certify_latency)
    for iteration in range(options.max_fixed_point_iterations):
        new_an = abort_fn(cw)
        new_cw = _conflict_window(profile, config, solution, new_an,
                                  certify_latency)
        if abs(new_an - an) < options.tolerance:
            return new_cw, new_an
        an, cw = new_an, new_cw
    raise ConvergenceError(
        "conflict-window fixed point did not converge",
        iterations=options.max_fixed_point_iterations,
    )


def _conflict_window(profile, config, solution, abort_rate,
                     certify_latency=None) -> float:
    """CW = update-transaction CPU + disk residence + certification (§4.1.1).

    Residence times are evaluated for the *update class* via the arrival
    theorem: an arriving update waits behind the mix-average queue but
    receives its own (retry-inflated) service demand.  The queue an
    executing transaction shares the server with is capped at the
    multiprogramming level: clients beyond it wait for admission *before*
    taking their snapshot, so they do not extend the conflict window.
    """
    from .demands import master_update_demand  # local import to avoid cycle noise

    update_demand = master_update_demand(profile.demands, abort_rate)
    queue_cap = (
        None if config.max_concurrency is None else config.max_concurrency - 1
    )
    residence = solution.residence_seen_by(
        {CPU: update_demand.cpu, DISK: update_demand.disk},
        queue_cap=queue_cap,
    )
    if certify_latency is None:
        certify_latency = config.certifier_delay
    return residence + certify_latency
