"""Abort-rate algebra of Section 3.3 of the paper.

Under snapshot isolation an update transaction aborts iff one of its ``U``
row updates conflicts with an update of a *concurrent* committed
transaction.  With uniform updates over ``DbUpdateSize`` rows
(``p = 1/DbUpdateSize``), a conflict window ``L`` and a system-wide update
commit rate ``W``:

    Success = (1 - p) ** (L * W * U**2)
    Abort   = 1 - Success

The key modelling trick (§3.3.2) is that the replicated abort rate relates
to the standalone one through the ratio of conflict-window exposure, so the
conflict parameters ``p`` and ``U`` cancel:

    (1 - AN)  = (1 - A1) ** (N * CW(N) / L(1))      (multi-master)
    (1 - A'N) = (1 - A1) ** (N * L_master / L(1))   (single-master master)

which lets the models predict replicated abort rates from the standalone
measurement ``A1`` alone.
"""

from __future__ import annotations

import math

from ..core.errors import ConfigurationError
from ..core.params import ConflictProfile


def success_probability(
    conflict: ConflictProfile, conflict_window: float, update_rate: float
) -> float:
    """Probability that an update transaction commits (§3.3.1).

    ``conflict_window`` is the interval during which the transaction is
    vulnerable (seconds); ``update_rate`` is the rate of *committed* update
    transactions it competes with (per second).
    """
    if conflict_window < 0:
        raise ConfigurationError("conflict window must be non-negative")
    if update_rate < 0:
        raise ConfigurationError("update rate must be non-negative")
    exponent = conflict_window * update_rate * conflict.updates_per_transaction**2
    return (1.0 - conflict.p) ** exponent


def standalone_abort_rate(
    conflict: ConflictProfile, update_response_time: float, update_rate: float
) -> float:
    """A1 — abort probability on a standalone database (§3.3.1).

    ``update_response_time`` is L(1); ``update_rate`` is W, the committed
    update transactions per second on the standalone system.
    """
    return 1.0 - success_probability(conflict, update_response_time, update_rate)


def scale_abort_rate(a1: float, exposure_ratio: float) -> float:
    """Scale a standalone abort rate by a conflict-window exposure ratio.

    Computes ``1 - (1 - a1) ** exposure_ratio`` in a numerically stable way
    (`a1` is typically well below 1%, so we work with ``log1p``).
    """
    if not 0.0 <= a1 < 1.0:
        raise ConfigurationError(f"A1 must be in [0, 1), got {a1}")
    if exposure_ratio < 0.0:
        raise ConfigurationError("exposure ratio must be non-negative")
    if a1 == 0.0:
        return 0.0
    scaled = -math.expm1(exposure_ratio * math.log1p(-a1))
    # Mathematically the result is < 1; keep it strictly below 1 under
    # floating-point rounding so retry inflation (1/(1-A)) stays finite.
    return min(scaled, 1.0 - 1e-12)


def partition_abort_mixture(a1, exposure_ratio, weights) -> float:
    """Skew-aware abort mixture over certifier shards (sharded path).

    A transaction updates partition ``p`` with probability ``w_p``;
    conditioned on landing there, the committed update traffic it can
    conflict with is the system-wide rate *concentrated* on that
    partition — ``S * w_p`` times the uniform share (the updatable rows
    split evenly over partitions, so the pairwise row-conflict
    probability gains the same factor the row pool loses).  The mixture

        ``AN = sum_p  w_p * (1 - (1 - A1) ** (exposure * S * w_p))``

    reduces *exactly* to :func:`scale_abort_rate` under uniform weights
    (``S * w_p = 1``), so the sharded model's abort algebra coincides
    with the global one whenever the placement planner balances load —
    and rises above it under skew, when hot shards concentrate
    conflicts.  Applied only on the sharded model path; the global path
    keeps the paper's formula untouched.
    """
    ws = [float(w) for w in weights]
    if not ws:
        raise ConfigurationError("partition weights must not be empty")
    if any(w < 0.0 for w in ws):
        raise ConfigurationError(f"partition weights must be >= 0, got {ws}")
    total = sum(ws)
    if total <= 0.0:
        raise ConfigurationError("partition weights must sum to > 0")
    ws = [w / total for w in ws]
    shards = len(ws)
    return sum(
        w * scale_abort_rate(a1, exposure_ratio * shards * w)
        for w in ws
        if w > 0.0
    )


def multimaster_abort_rate(
    a1: float, replicas: int, conflict_window: float, standalone_window: float
) -> float:
    """AN — abort probability in an N-replica multi-master system (§3.3.2).

    ``(1 - AN) = (1 - A1) ** (N * CW(N) / L(1))``.
    """
    if replicas < 1:
        raise ConfigurationError("replicas must be >= 1")
    if standalone_window <= 0.0:
        if a1 == 0.0:
            return 0.0
        raise ConfigurationError("L(1) must be positive when A1 > 0")
    return scale_abort_rate(a1, replicas * conflict_window / standalone_window)


def master_abort_rate(
    a1: float, replicas: int, master_latency: float, standalone_window: float
) -> float:
    """A'N — abort probability at the master of a single-master system.

    The master resolves all conflicts locally like a standalone database but
    sees ``N`` times the update rate, and its conflict window is the update
    execution time *on the master* (§3.3.3, §2):
    ``(1 - A'N) = (1 - A1) ** (N * L_master / L(1))``.
    """
    if replicas < 1:
        raise ConfigurationError("replicas must be >= 1")
    if standalone_window <= 0.0:
        if a1 == 0.0:
            return 0.0
        raise ConfigurationError("L(1) must be positive when A1 > 0")
    return scale_abort_rate(a1, replicas * master_latency / standalone_window)


def retry_inflation(abort_rate: float) -> float:
    """Work multiplier from retried aborts: ``1 / (1 - A)`` (§3.3.1).

    To commit W update transactions, ``W / (1 - A)`` must be submitted.
    """
    if not 0.0 <= abort_rate < 1.0:
        raise ConfigurationError(f"abort rate must be in [0, 1), got {abort_rate}")
    return 1.0 / (1.0 - abort_rate)


def db_update_size_for_abort_rate(
    target_a1: float,
    updates_per_transaction: int,
    update_response_time: float,
    update_rate: float,
) -> int:
    """Invert the A1 formula: the DbUpdateSize that yields *target_a1*.

    Used by the Figure 14 experiment, which injects a heap table sized to
    produce standalone abort rates of 0.24%, 0.53% and 0.90%.
    """
    if not 0.0 < target_a1 < 1.0:
        raise ConfigurationError("target A1 must be in (0, 1)")
    if update_response_time <= 0.0 or update_rate <= 0.0:
        raise ConfigurationError("L(1) and W must be positive")
    exponent = update_response_time * update_rate * updates_per_transaction**2
    # Solve (1-p)^exponent = 1 - target  =>  p = 1 - (1-target)^(1/exponent)
    p = -math.expm1(math.log1p(-target_a1) / exponent)
    size = max(updates_per_transaction, int(round(1.0 / p)))
    return size
