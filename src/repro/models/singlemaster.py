"""Analytical model of the single-master replicated database (§3.2.2, §3.3.3).

An N-replica single-master (SM) system has 1 master executing every update
transaction and N-1 slaves executing read-only transactions plus the
propagated writesets.  The model solves two coupled closed networks — one
for the master, one for a representative slave — and balances them with the
algorithm of Figure 3 of the paper:

* start from the proportional client split (``Pw*C*N`` clients at the
  master, ``Pr*C*N/(N-1)`` per slave);
* if the resulting read:write throughput ratio is below ``Pr:Pw`` the
  master has excess capacity, so read-only clients move to the master
  (the "extra reads" E of §3.3.3) until the ratio balances;
* if the ratio is above ``Pr:Pw`` the master is the bottleneck, so clients
  queue at the master (moving from slaves to the master's update queue)
  until the ratio balances.

The master is solved as a **two-class** MVA network (read class demand
``rc``, update class demand ``wc/(1-A'N)``); the slave is a single-class
network whose read demand is inflated by writeset application
(``rc + ws * writesets-per-read``).  The master abort rate ``A'N`` is
resolved by an outer fixed point on the master's update residence time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.errors import ConfigurationError, ConvergenceError
from ..core.params import (
    CPU,
    DISK,
    ReplicationConfig,
    StandaloneProfile,
)
from ..core.results import OperatingPoint, Prediction, ReplicaBreakdown
from ..queueing.mva import (
    MVASolution,
    MulticlassSolution,
    solve_mva,
    solve_mva_multiclass,
)
from ..queueing.network import (
    ClosedNetwork,
    MulticlassNetwork,
    delay_center,
    queueing_center,
)
from ..queueing.operational import interactive_response_time
from .aborts import master_abort_rate, retry_inflation, scale_abort_rate
from .demands import slave_demand, standalone_demand

LB = "load_balancer"
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class SingleMasterOptions:
    """Tuning knobs for the single-master solver."""

    #: Relative tolerance for the "ratio approximately equals Pr:Pw" test.
    ratio_tolerance: float = 0.02
    #: Outer fixed-point iterations for the master abort rate A'N.
    max_abort_iterations: int = 50
    abort_tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.ratio_tolerance <= 0:
            raise ConfigurationError("ratio tolerance must be positive")


@dataclass(frozen=True)
class _BalanceResult:
    """Outcome of one balancing pass at a fixed abort rate."""

    read_throughput: float  # committed read-only tps, system-wide
    write_throughput: float  # committed update tps, system-wide
    extra_read_throughput: float  # E — reads served by the master
    master: MulticlassSolution
    slave: Optional[MVASolution]
    slave_clients: float  # remaining read clients per slave
    master_read_clients: float
    master_write_clients: float


def predict_singlemaster(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    options: Optional[SingleMasterOptions] = None,
) -> Prediction:
    """Predict throughput/response time of an N-replica single-master system."""
    options = options or SingleMasterOptions()
    if profile.mix.read_only:
        return _predict_read_only(profile, config)
    if config.replicas == 1:
        return _predict_master_only(profile, config, options)
    return _predict_balanced(profile, config, options)


# ---------------------------------------------------------------------------
# Degenerate cases
# ---------------------------------------------------------------------------


def _predict_read_only(
    profile: StandaloneProfile, config: ReplicationConfig
) -> Prediction:
    """Pw = 0: the master is just another read replica behind the balancer."""
    network = ClosedNetwork(
        centers=(
            queueing_center(CPU, profile.demands.read.cpu),
            queueing_center(DISK, profile.demands.read.disk),
            delay_center(LB, config.load_balancer_delay),
        ),
        think_time=config.think_time,
    )
    solution = solve_mva(network, config.clients_per_replica)
    point = OperatingPoint(
        throughput=config.replicas * solution.throughput,
        response_time=solution.response_time,
        abort_rate=0.0,
        utilization=dict(solution.utilization),
    )
    breakdown = ReplicaBreakdown(
        role="replica",
        throughput=solution.throughput,
        clients=float(config.clients_per_replica),
        utilization=dict(solution.utilization),
        residence_times=dict(solution.residence_times),
    )
    return Prediction(replicas=config.replicas, point=point, breakdown=(breakdown,))


def _predict_master_only(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    options: SingleMasterOptions,
) -> Prediction:
    """N = 1: the master serves the full mix, like a standalone database."""
    abort = profile.abort_rate
    solution = None
    for _ in range(options.max_abort_iterations):
        demand = standalone_demand(profile.demands, profile.mix, abort)
        network = ClosedNetwork(
            centers=(
                queueing_center(CPU, demand.cpu),
                queueing_center(DISK, demand.disk),
                delay_center(LB, config.load_balancer_delay),
            ),
            think_time=config.think_time,
        )
        solution = solve_mva(network, config.clients_per_replica)
        update = profile.demands.write.scaled(retry_inflation(abort))
        queue_cap = (
            None if config.max_concurrency is None else config.max_concurrency - 1
        )
        latency = solution.residence_seen_by(
            {CPU: update.cpu, DISK: update.disk}, queue_cap=queue_cap
        )
        new_abort = master_abort_rate(
            profile.abort_rate, 1, latency, profile.update_response_time
        )
        if abs(new_abort - abort) < options.abort_tolerance:
            abort = new_abort
            break
        abort = new_abort
    assert solution is not None
    point = OperatingPoint(
        throughput=solution.throughput,
        response_time=solution.response_time,
        abort_rate=abort,
        utilization=dict(solution.utilization),
    )
    breakdown = ReplicaBreakdown(
        role="master",
        throughput=solution.throughput,
        clients=float(config.clients_per_replica),
        utilization=dict(solution.utilization),
        residence_times=dict(solution.residence_times),
    )
    return Prediction(replicas=1, point=point, breakdown=(breakdown,))


# ---------------------------------------------------------------------------
# The balanced N >= 2 case (Figure 3)
# ---------------------------------------------------------------------------


def _predict_balanced(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    options: SingleMasterOptions,
) -> Prediction:
    n = config.replicas
    abort = profile.abort_rate
    balance: Optional[_BalanceResult] = None
    for _ in range(options.max_abort_iterations):
        balance = _balance(profile, config, options, abort)
        latency = _master_update_latency(balance.master, profile, config, abort)
        new_abort = _master_abort_estimate(profile, n, latency, balance)
        if abs(new_abort - abort) < options.abort_tolerance:
            abort = new_abort
            balance = _balance(profile, config, options, abort)
            break
        abort = new_abort
    else:
        raise ConvergenceError(
            "master abort-rate fixed point did not converge",
            iterations=options.max_abort_iterations,
        )

    assert balance is not None
    total_throughput = balance.read_throughput + balance.write_throughput
    response = interactive_response_time(
        population=config.total_clients,
        throughput=total_throughput,
        think_time=config.think_time,
    )
    # Response time includes the LB delay already (it is a center in both
    # sub-networks); subtract nothing further.
    master_util = dict(balance.master.utilization)
    slave_util = dict(balance.slave.utilization) if balance.slave else {}
    busiest = {
        resource: max(master_util.get(resource, 0.0), slave_util.get(resource, 0.0))
        for resource in (CPU, DISK)
    }
    point = OperatingPoint(
        throughput=total_throughput,
        response_time=response,
        abort_rate=abort,
        utilization=busiest,
    )
    breakdown = [
        ReplicaBreakdown(
            role="master",
            throughput=balance.master.total_throughput,
            clients=balance.master_read_clients + balance.master_write_clients,
            utilization=master_util,
            residence_times={
                name: balance.master.residence_times[WRITE][name]
                for name in balance.master.residence_times[WRITE]
            },
        )
    ]
    if balance.slave is not None:
        breakdown.append(
            ReplicaBreakdown(
                role="slave",
                throughput=balance.slave.throughput,
                clients=balance.slave_clients,
                utilization=slave_util,
                residence_times=dict(balance.slave.residence_times),
            )
        )
    return Prediction(
        replicas=n,
        point=point,
        breakdown=tuple(breakdown),
        master_extra_reads=balance.extra_read_throughput,
    )


def _master_network(
    profile: StandaloneProfile, config: ReplicationConfig, abort: float
) -> MulticlassNetwork:
    inflated = profile.demands.write.scaled(retry_inflation(abort))
    return MulticlassNetwork(
        centers=(
            queueing_center(CPU, 0.0),
            queueing_center(DISK, 0.0),
            delay_center(LB, config.load_balancer_delay),
        ),
        demands={
            READ: (
                profile.demands.read.cpu,
                profile.demands.read.disk,
                config.load_balancer_delay,
            ),
            WRITE: (inflated.cpu, inflated.disk, config.load_balancer_delay),
        },
        think_times={READ: config.think_time, WRITE: config.think_time},
    )


def _solve_master(
    network: MulticlassNetwork, read_clients: float, write_clients: float
) -> Tuple[float, float, MulticlassSolution]:
    solution = solve_mva_multiclass(
        network, {READ: read_clients, WRITE: write_clients}
    )
    return solution.throughputs[READ], solution.throughputs[WRITE], solution


def _solve_slave(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    clients: float,
    writesets_per_read: float,
) -> MVASolution:
    demand = slave_demand(
        profile.demands,
        profile.mix,
        config.replicas,
        writesets_per_read=writesets_per_read,
    )
    network = ClosedNetwork(
        centers=(
            queueing_center(CPU, demand.cpu),
            queueing_center(DISK, demand.disk),
            delay_center(LB, config.load_balancer_delay),
        ),
        think_time=config.think_time,
    )
    return solve_mva(network, clients)


def _master_abort_estimate(
    profile: StandaloneProfile,
    replicas: int,
    latency: float,
    balance: _BalanceResult,
) -> float:
    """A'N from the current balancing iterate.

    The paper's formula ``(1-A'N) = (1-A1)^(N*L_master/L(1))`` assumes the
    master commits ``N*W`` update transactions — the load of an equivalent
    N-replica multi-master system (§3.3.3).  Once the master saturates it
    commits far fewer, so when the profile records the standalone update
    rate ``W`` we scale the exposure by the *predicted* committed update
    throughput instead:

        (1 - A'N) = (1 - A1) ^ (L_master * W_sys) / (L(1) * W)

    which reduces to the paper's expression when ``W_sys = N*W``.
    """
    if profile.abort_rate == 0.0:
        return 0.0
    if profile.update_rate:
        standalone_exposure = profile.update_response_time * profile.update_rate
        exposure = latency * balance.write_throughput / standalone_exposure
        return scale_abort_rate(profile.abort_rate, exposure)
    return master_abort_rate(
        profile.abort_rate, replicas, latency, profile.update_response_time
    )


def _master_update_latency(
    solution: MulticlassSolution,
    profile: StandaloneProfile,
    config: ReplicationConfig,
    abort: float,
) -> float:
    """Execution time of an update on the master (its conflict window).

    Bounded by the multiprogramming level: a transaction executes alongside
    at most ``max_concurrency - 1`` others, so its execution time cannot
    exceed ``demand * max_concurrency`` even when the closed-loop population
    queues at the master for admission.
    """
    residence = solution.residence_times[WRITE]
    latency = residence.get(CPU, 0.0) + residence.get(DISK, 0.0)
    if config.max_concurrency is not None:
        demand = profile.demands.write.total * retry_inflation(abort)
        latency = min(latency, demand * config.max_concurrency)
    return latency


def _ratio_state(
    read_throughput: float, write_throughput: float, mix_ratio: float, tol: float
) -> int:
    """-1: reads too low (master excess); 0: balanced; +1: master bottleneck."""
    if write_throughput <= 0.0:
        return 1
    ratio = read_throughput / write_throughput
    if abs(ratio - mix_ratio) <= tol * mix_ratio:
        return 0
    return -1 if ratio < mix_ratio else 1


def _balance(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    options: SingleMasterOptions,
    abort: float,
) -> _BalanceResult:
    """One pass of the Figure 3 balancing algorithm at a fixed A'N."""
    n = config.replicas
    mix = profile.mix
    slaves = n - 1
    master_clients = mix.write_fraction * config.clients_per_replica * n
    slave_clients = mix.read_fraction * config.clients_per_replica * n / slaves
    mix_ratio = mix.read_fraction / mix.write_fraction

    network = _master_network(profile, config, abort)

    _, write_thpt, master_sol = _solve_master(network, 0.0, master_clients)
    wspr = slaves * mix.write_fraction / mix.read_fraction
    slave_sol = _solve_slave(profile, config, slave_clients, wspr)
    read_thpt = slaves * slave_sol.throughput

    state = _ratio_state(read_thpt, write_thpt, mix_ratio, options.ratio_tolerance)
    if state == 0:
        return _BalanceResult(
            read_throughput=read_thpt,
            write_throughput=write_thpt,
            extra_read_throughput=0.0,
            master=master_sol,
            slave=slave_sol,
            slave_clients=slave_clients,
            master_read_clients=0.0,
            master_write_clients=master_clients,
        )
    if state < 0:
        return _rebalance_excess_master(
            profile, config, options, network, master_clients, slave_clients,
            mix_ratio, read_thpt, write_thpt, master_sol, slave_sol,
        )
    return _rebalance_bottleneck_master(
        profile, config, options, network, master_clients, slave_clients,
        mix_ratio, read_thpt, write_thpt, master_sol, slave_sol, wspr,
    )


def _rebalance_excess_master(
    profile, config, options, network, master_clients, slave_clients,
    mix_ratio, read_thpt, write_thpt, master_sol, slave_sol,
):
    """Master has spare capacity: move read-only clients onto the master.

    Each step j moves one client from every slave ((N-1) clients total) into
    the master's read class, exactly as in Figure 3.
    """
    slaves = config.replicas - 1
    current = _BalanceResult(
        read_throughput=read_thpt,
        write_throughput=write_thpt,
        extra_read_throughput=0.0,
        master=master_sol,
        slave=slave_sol,
        slave_clients=slave_clients,
        master_read_clients=0.0,
        master_write_clients=master_clients,
    )
    best = current
    max_steps = int(slave_clients)
    for j in range(1, max_steps + 1):
        previous = current
        extra_read, write_thpt, master_sol = _solve_master(
            network, j * slaves, master_clients
        )
        remaining = slave_clients - j
        # Writesets applied per read at a slave, from the current iterate's
        # committed update rate and the previous slave read rate (§3.3.3).
        slave_read_rate = max(read_thpt, 1e-12)
        wspr = slaves * write_thpt / slave_read_rate
        slave_sol = _solve_slave(profile, config, remaining, wspr)
        read_thpt = slaves * slave_sol.throughput
        total_read = read_thpt + extra_read
        current = _BalanceResult(
            read_throughput=total_read,
            write_throughput=write_thpt,
            extra_read_throughput=extra_read,
            master=master_sol,
            slave=slave_sol,
            slave_clients=remaining,
            master_read_clients=float(j * slaves),
            master_write_clients=master_clients,
        )
        if _total(current) > _total(best):
            best = current
        if _ratio_state(
            total_read, write_thpt, mix_ratio, options.ratio_tolerance
        ) >= 0:
            return _blend_at_ratio(previous, current, mix_ratio)
        # Both tiers are saturated when moving more clients only lowers the
        # total; the ratio can then no longer balance by *raising* reads,
        # only by crushing write throughput — a degenerate equilibrium the
        # real least-loaded balancer never enters.  Once the total falls
        # well below the best placement seen, keep that placement.
        if _total(current) < 0.95 * _total(best):
            return best
    return best


def _total(balance: _BalanceResult) -> float:
    return balance.read_throughput + balance.write_throughput


def _blend_at_ratio(
    prev: _BalanceResult, cur: _BalanceResult, mix_ratio: float
) -> _BalanceResult:
    """Interpolate between two balancing iterates to hit Pr:Pw exactly.

    The Figure 3 loop moves whole clients per step, so the committed
    read:write ratio jumps across the target; blending the two straddling
    iterates removes the stair-step artifact from predictions.
    """

    def ratio(state: _BalanceResult) -> float:
        if state.write_throughput <= 0:
            return float("inf")
        return state.read_throughput / state.write_throughput

    r0, r1 = ratio(prev), ratio(cur)
    if r1 == r0 or r0 == float("inf") or r1 == float("inf"):
        return cur
    t = (mix_ratio - r0) / (r1 - r0)
    t = min(1.0, max(0.0, t))

    def mix(a: float, b: float) -> float:
        return a + t * (b - a)

    return _BalanceResult(
        read_throughput=mix(prev.read_throughput, cur.read_throughput),
        write_throughput=mix(prev.write_throughput, cur.write_throughput),
        extra_read_throughput=mix(
            prev.extra_read_throughput, cur.extra_read_throughput
        ),
        master=cur.master,
        slave=cur.slave,
        slave_clients=mix(prev.slave_clients, cur.slave_clients),
        master_read_clients=mix(
            prev.master_read_clients, cur.master_read_clients
        ),
        master_write_clients=mix(
            prev.master_write_clients, cur.master_write_clients
        ),
    )


def _rebalance_bottleneck_master(
    profile, config, options, network, master_clients, slave_clients,
    mix_ratio, read_thpt, write_thpt, master_sol, slave_sol, wspr,
):
    """Master is the bottleneck: clients queue at the master.

    Each step j moves one client from every slave into the master's update
    queue, reducing the offered read load until the committed ratio matches
    the workload mix.
    """
    slaves = config.replicas - 1
    best = _BalanceResult(
        read_throughput=read_thpt,
        write_throughput=write_thpt,
        extra_read_throughput=0.0,
        master=master_sol,
        slave=slave_sol,
        slave_clients=slave_clients,
        master_read_clients=0.0,
        master_write_clients=master_clients,
    )
    max_steps = int(slave_clients)
    for j in range(1, max_steps + 1):
        previous = best
        _, write_thpt, master_sol = _solve_master(
            network, 0.0, master_clients + j * slaves
        )
        remaining = slave_clients - j
        slave_read_rate = max(read_thpt, 1e-12)
        wspr = slaves * write_thpt / slave_read_rate
        slave_sol = _solve_slave(profile, config, remaining, wspr)
        read_thpt = slaves * slave_sol.throughput
        best = _BalanceResult(
            read_throughput=read_thpt,
            write_throughput=write_thpt,
            extra_read_throughput=0.0,
            master=master_sol,
            slave=slave_sol,
            slave_clients=remaining,
            master_read_clients=0.0,
            master_write_clients=master_clients + j * slaves,
        )
        if _ratio_state(
            read_thpt, write_thpt, mix_ratio, options.ratio_tolerance
        ) <= 0:
            return _blend_at_ratio(previous, best, mix_ratio)
    return best
