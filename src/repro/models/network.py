"""Network-bandwidth budgets for update propagation (§6.3.1).

The paper verifies that the LAN is never the bottleneck: gigabit links
carry 275-byte writesets, and "the maximum bandwidth to/from the certifier
in the most demanding run is less than 1 Mbit/s, orders of magnitude lower
than the available bandwidth".  These helpers reproduce that arithmetic for
any predicted operating point, so capacity planners can check the
LAN-deployment assumption (§3.4, assumption 7) before trusting the models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError

#: Gigabit Ethernet, the paper's interconnect (§6.1), in bits per second.
GIGABIT = 1_000_000_000.0

#: Protocol overhead per writeset message (headers, framing, version info).
_MESSAGE_OVERHEAD_BYTES = 60


@dataclass(frozen=True)
class NetworkBudget:
    """Bandwidth demands of one replicated operating point."""

    #: Committed update transactions per second, system wide.
    update_throughput: float
    replicas: int
    writeset_bytes: int
    link_bits_per_second: float = GIGABIT

    def __post_init__(self) -> None:
        if self.update_throughput < 0:
            raise ConfigurationError("update throughput must be >= 0")
        if self.replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        if self.writeset_bytes < 0:
            raise ConfigurationError("writeset size must be >= 0")
        if self.link_bits_per_second <= 0:
            raise ConfigurationError("link speed must be positive")

    @property
    def message_bits(self) -> float:
        """Wire size of one writeset message in bits."""
        return 8.0 * (self.writeset_bytes + _MESSAGE_OVERHEAD_BYTES)

    @property
    def certifier_ingress_bits_per_second(self) -> float:
        """Traffic into the certifier: every update's writeset, once."""
        return self.update_throughput * self.message_bits

    @property
    def certifier_egress_bits_per_second(self) -> float:
        """Traffic out of the certifier: each writeset to N-1 other replicas.

        (The origin replica already holds its own updates.)
        """
        return (
            self.update_throughput * (self.replicas - 1) * self.message_bits
        )

    @property
    def per_replica_ingress_bits_per_second(self) -> float:
        """Propagation traffic into one replica (remote writesets)."""
        if self.replicas == 1:
            return 0.0
        # Each replica receives the writesets of all others; with perfect
        # balancing that is (N-1)/N of the system update rate.
        share = (self.replicas - 1) / self.replicas
        return self.update_throughput * share * self.message_bits

    @property
    def certifier_link_utilization(self) -> float:
        """Busiest certifier direction as a fraction of link capacity."""
        busiest = max(
            self.certifier_ingress_bits_per_second,
            self.certifier_egress_bits_per_second,
        )
        return busiest / self.link_bits_per_second

    @property
    def lan_assumption_holds(self) -> bool:
        """True when propagation uses under 1% of the link (§6.3.1 regime)."""
        return self.certifier_link_utilization < 0.01

    def to_text(self) -> str:
        """Render the budget."""
        return (
            f"network budget: {self.update_throughput:.0f} updates/s x "
            f"{self.writeset_bytes} B over {self.replicas} replicas -> "
            f"certifier in {self.certifier_ingress_bits_per_second/1e6:.2f} "
            f"Mbit/s, out {self.certifier_egress_bits_per_second/1e6:.2f} "
            f"Mbit/s ({self.certifier_link_utilization:.3%} of link)"
        )


def budget_for_prediction(
    prediction,
    write_fraction: float,
    writeset_bytes: int,
    link_bits_per_second: float = GIGABIT,
) -> NetworkBudget:
    """Build a budget from a model prediction.

    ``prediction`` is a :class:`~repro.core.results.Prediction`;
    ``write_fraction`` is the workload's Pw (committed updates =
    ``Pw * throughput``).
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write fraction must be in [0, 1]")
    return NetworkBudget(
        update_throughput=write_fraction * prediction.throughput,
        replicas=prediction.replicas,
        writeset_bytes=writeset_bytes,
        link_bits_per_second=link_bits_per_second,
    )
