"""Capacity planning and dynamic provisioning on top of the predictors.

The paper's introduction names two consumers for its models: *capacity
planning* and *dynamic service provisioning* in data centers whose load
follows diurnal cycles.  This module implements both:

* :func:`replicas_for_response_time` — smallest deployment meeting a
  latency SLA;
* :func:`plan_deployment` — pick a design and size for a joint
  throughput + latency target, with head-room;
* :func:`provisioning_schedule` — replica counts per period for a load
  forecast (the diurnal-cycle use case), plus how many replica-hours the
  predictions save against static peak provisioning.

Everything here consumes only a :class:`~repro.core.params.StandaloneProfile`
— the point of the paper is that no replicated measurements are needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError
from ..core.params import ReplicationConfig, StandaloneProfile
from .api import DESIGNS, predict


def replicas_for_response_time(
    design: str,
    profile: StandaloneProfile,
    config: ReplicationConfig,
    max_response_time: float,
    max_replicas: int = 64,
) -> Optional[int]:
    """Smallest replica count whose predicted response time meets the SLA.

    Returns ``None`` when no deployment up to *max_replicas* meets it
    (e.g. the SLA is below the zero-load service time, or a saturated
    single-master system whose latency grows with N).
    """
    if max_response_time <= 0:
        raise ConfigurationError("max response time must be positive")
    for n in range(1, max_replicas + 1):
        prediction = predict(design, profile, config.with_replicas(n))
        if prediction.response_time <= max_response_time:
            return n
    return None


@dataclass(frozen=True)
class DeploymentPlan:
    """A sized deployment meeting throughput and latency targets."""

    design: str
    replicas: int
    predicted_throughput: float
    predicted_response_time: float
    #: Fraction of predicted capacity the target consumes (<= 1).
    load_factor: float


def plan_deployment(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    target_throughput: float,
    max_response_time: Optional[float] = None,
    designs: Sequence[str] = DESIGNS,
    headroom: float = 0.0,
    max_replicas: int = 64,
) -> Optional[DeploymentPlan]:
    """Choose the cheapest (fewest replicas) deployment meeting the targets.

    ``headroom`` over-provisions capacity by the given fraction (0.2 keeps
    20% spare).  Ties between designs break toward fewer replicas, then
    toward multi-master (the more scalable design).
    """
    if target_throughput <= 0:
        raise ConfigurationError("target throughput must be positive")
    if not 0.0 <= headroom < 1.0:
        raise ConfigurationError("headroom must be in [0, 1)")
    required = target_throughput / (1.0 - headroom)

    best: Optional[DeploymentPlan] = None
    for design in designs:
        for n in range(1, max_replicas + 1):
            prediction = predict(design, profile, config.with_replicas(n))
            if prediction.throughput < required:
                continue
            if (
                max_response_time is not None
                and prediction.response_time > max_response_time
            ):
                continue
            plan = DeploymentPlan(
                design=design,
                replicas=n,
                predicted_throughput=prediction.throughput,
                predicted_response_time=prediction.response_time,
                load_factor=target_throughput / prediction.throughput,
            )
            if best is None or plan.replicas < best.replicas:
                best = plan
            break  # smallest n for this design found
    return best


@dataclass(frozen=True)
class MixedFleetPlan:
    """A heterogeneous deployment sized from an inventory of machines."""

    design: str
    #: Capacity multipliers of the machines picked, largest first.
    capacities: Tuple[float, ...]
    #: Sum of the picked multipliers (homogeneous-replica equivalents).
    effective_replicas: float
    predicted_throughput: float
    predicted_response_time: float
    #: Fraction of predicted capacity the target consumes (<= 1).
    load_factor: float

    @property
    def machines(self) -> int:
        """Number of physical machines in the fleet."""
        return len(self.capacities)

    def to_text(self) -> str:
        """Render the plan."""
        fleet = " + ".join(f"{c:g}x" for c in self.capacities)
        return (
            f"{self.design}: {self.machines} machines [{fleet}] "
            f"(~{self.effective_replicas:g} replica-equivalents) -> "
            f"{self.predicted_throughput:.1f} tps predicted "
            f"(load factor {self.load_factor:.0%})"
        )


def _interpolated_throughput(
    design: str,
    profile: StandaloneProfile,
    config: ReplicationConfig,
    effective: float,
    max_replicas: int,
) -> float:
    """Predicted throughput at a *fractional* replica count.

    The capacity model of heterogeneous fleets: a 1.5x machine
    contributes 1.5 homogeneous-replica equivalents, and the fleet's
    throughput is the homogeneous curve evaluated at the summed
    equivalents, interpolated linearly between the bracketing integer
    deployments.  Sub-linear effects (writeset propagation, certifier
    load) are inherited from the curve itself.
    """
    if effective <= 0.0:
        return 0.0
    lo = max(1, min(max_replicas, int(effective)))
    hi = min(max_replicas, lo + 1)
    t_lo = predict(design, profile, config.with_replicas(lo)).throughput
    if effective <= lo or hi == lo:
        return t_lo * min(1.0, effective / lo)
    t_hi = predict(design, profile, config.with_replicas(hi)).throughput
    return t_lo + (t_hi - t_lo) * (effective - lo)


def plan_mixed_fleet(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    target_throughput: float,
    capacities: Sequence[float],
    design: str = "multi-master",
    max_response_time: Optional[float] = None,
    headroom: float = 0.0,
) -> Optional[MixedFleetPlan]:
    """Size a fleet from a heterogeneous machine inventory.

    *capacities* is the inventory of available machines as speed
    multipliers (e.g. ``(2.0, 1.0, 1.0, 0.5)``).  Machines are taken
    largest-first (fewest machines for the capacity, the cheapest fleet
    under per-machine pricing) until the interpolated throughput curve
    clears the target with *headroom*.  Returns ``None`` when even the
    whole inventory cannot serve the target — the signal to buy bigger
    boxes or shard.
    """
    if target_throughput <= 0:
        raise ConfigurationError("target throughput must be positive")
    if not capacities:
        raise ConfigurationError("the machine inventory must not be empty")
    if any(c <= 0 for c in capacities):
        raise ConfigurationError("every capacity multiplier must be positive")
    if not 0.0 <= headroom < 1.0:
        raise ConfigurationError("headroom must be in [0, 1)")
    required = target_throughput / (1.0 - headroom)
    inventory = sorted((float(c) for c in capacities), reverse=True)
    max_replicas = max(64, int(sum(inventory)) + 1)

    picked: List[float] = []
    for capacity in inventory:
        picked.append(capacity)
        effective = sum(picked)
        throughput = _interpolated_throughput(
            design, profile, config, effective, max_replicas
        )
        if throughput < required:
            continue
        if max_response_time is not None:
            # Latency is checked at the bracketing integer deployment
            # (the conservative, larger-population side).
            n = max(1, int(round(effective)))
            prediction = predict(design, profile, config.with_replicas(n))
            if prediction.response_time > max_response_time:
                continue
        return MixedFleetPlan(
            design=design,
            capacities=tuple(picked),
            effective_replicas=effective,
            predicted_throughput=throughput,
            predicted_response_time=(
                predict(design, profile,
                        config.with_replicas(max(1, int(round(effective))))
                        ).response_time
            ),
            load_factor=target_throughput / throughput,
        )
    return None


@dataclass(frozen=True)
class PlacementPlan:
    """A weight-balanced partition placement (partial replication)."""

    #: The placement itself, consumable by all three pillars.
    partition_map: "PartitionMap"
    #: Normalised partition weights the plan balanced.
    weights: Tuple[float, ...]
    #: Per-replica hosted weight (sum over hosted partitions).
    replica_loads: Tuple[float, ...]

    @property
    def max_load(self) -> float:
        """Heaviest replica's hosted weight."""
        return max(self.replica_loads)

    @property
    def imbalance(self) -> float:
        """Max replica load over the mean (1.0 = perfectly balanced)."""
        mean = sum(self.replica_loads) / len(self.replica_loads)
        if mean <= 0.0:
            return 1.0
        return self.max_load / mean

    def to_text(self) -> str:
        """Render the plan."""
        lines = [self.partition_map.to_text()]
        loads = " ".join(f"{load:.3f}" for load in self.replica_loads)
        lines.append(
            f"  per-replica hosted weight: [{loads}] "
            f"(imbalance {self.imbalance:.2f}x)"
        )
        return "\n".join(lines)


def plan_placement(
    partitions: int,
    replicas: int,
    replication_factor: int,
    weights: Optional[Sequence[float]] = None,
) -> PlacementPlan:
    """Weight-balanced partition assignment under a replication factor.

    Places each of *partitions* partitions on exactly
    *replication_factor* replicas so that the per-replica hosted weight —
    each replica's share of the update-propagation load, the term the
    partition-aware model sums over hosted partitions — is as even as
    greedy LPT gets it: partitions are taken heaviest-first and each goes
    to the ``rf`` least-loaded replicas.  *weights* is the relative
    update popularity per partition (uniform when ``None``).

    Requires ``partitions * replication_factor >= replicas`` so every
    replica can host at least one partition (greedy always fills an
    empty replica first, so coverage follows).
    """
    from ..partition.placement import PartitionMap, _normalized_weights

    if partitions < 1:
        raise ConfigurationError("need at least one partition")
    if replicas < 1:
        raise ConfigurationError("need at least one replica")
    if not 1 <= replication_factor <= replicas:
        raise ConfigurationError(
            f"replication factor must be in [1, {replicas}], got "
            f"{replication_factor}"
        )
    if partitions * replication_factor < replicas:
        raise ConfigurationError(
            f"{partitions} partitions x factor {replication_factor} cannot "
            f"cover {replicas} replicas; shrink the fleet or raise the "
            f"factor"
        )
    normalised = _normalized_weights(weights, partitions)
    loads = [0.0] * replicas
    placement: List[Tuple[int, ...]] = [()] * partitions
    order = sorted(range(partitions), key=lambda p: (-normalised[p], p))
    for p in order:
        # The rf least-loaded replicas host this partition (ties break
        # by index, keeping the plan deterministic).
        chosen = sorted(range(replicas),
                        key=lambda r: (loads[r], r))[:replication_factor]
        placement[p] = tuple(sorted(chosen))
        for r in chosen:
            loads[r] += normalised[p]
    partition_map = PartitionMap(partitions, replicas, tuple(placement))
    return PlacementPlan(
        partition_map=partition_map,
        weights=normalised,
        replica_loads=tuple(loads),
    )


@dataclass(frozen=True)
class ProvisioningSchedule:
    """Replica counts per forecast period."""

    design: str
    #: (period label, offered load tps, replicas) per period.
    periods: Tuple[Tuple[str, float, int], ...]
    #: Replicas a static deployment would need for the peak period.
    static_replicas: int

    @property
    def replica_periods(self) -> int:
        """Total replica-periods the dynamic schedule uses."""
        return sum(replicas for _, _, replicas in self.periods)

    @property
    def static_replica_periods(self) -> int:
        """Replica-periods under static peak provisioning."""
        return self.static_replicas * len(self.periods)

    @property
    def savings_fraction(self) -> float:
        """Fraction of replica-periods saved vs static provisioning."""
        static = self.static_replica_periods
        if static == 0:
            return 0.0
        return 1.0 - self.replica_periods / static

    def to_text(self) -> str:
        """Render the schedule."""
        lines = [f"provisioning schedule ({self.design}):"]
        for label, load, replicas in self.periods:
            bar = "#" * replicas
            lines.append(f"  {label:>8s} {load:8.1f} tps -> {replicas:2d} {bar}")
        lines.append(
            f"  dynamic {self.replica_periods} replica-periods vs static "
            f"{self.static_replica_periods} "
            f"({self.savings_fraction:.0%} saved)"
        )
        return "\n".join(lines)


def provisioning_schedule(
    design: str,
    profile: StandaloneProfile,
    config: ReplicationConfig,
    load_forecast: Sequence[Tuple[str, float]],
    headroom: float = 0.1,
    max_replicas: int = 64,
) -> ProvisioningSchedule:
    """Size the system per forecast period (the diurnal-cycle use case).

    *load_forecast* is a sequence of ``(period label, offered tps)`` pairs.
    Raises when any period's load is unreachable for this design — the
    signal to switch designs or shard.
    """
    if not load_forecast:
        raise ConfigurationError("load forecast must not be empty")
    if not 0.0 <= headroom < 1.0:
        raise ConfigurationError("headroom must be in [0, 1)")

    # Predictions are monotone-ish in N but sizing each period is cheap;
    # cache by target bucket via the per-design capacity curve.
    capacities: List[float] = []  # capacities[n-1] = predicted tps at n
    def capacity(n: int) -> float:
        while len(capacities) < n:
            prediction = predict(
                design, profile, config.with_replicas(len(capacities) + 1)
            )
            capacities.append(prediction.throughput)
        return capacities[n - 1]

    def size_for(load: float) -> int:
        required = load / (1.0 - headroom)
        for n in range(1, max_replicas + 1):
            if capacity(n) >= required:
                return n
        raise ConfigurationError(
            f"{design} cannot serve {load:.1f} tps (+{headroom:.0%} headroom) "
            f"within {max_replicas} replicas"
        )

    periods = tuple(
        (label, load, size_for(load)) for label, load in load_forecast
    )
    peak = max(load for _, load in load_forecast)
    return ProvisioningSchedule(
        design=design,
        periods=periods,
        static_replicas=size_for(peak),
    )
