"""High-level prediction API.

This is the public entry point a capacity planner uses: feed it a
:class:`~repro.core.params.StandaloneProfile` (measured with
:mod:`repro.profiling`) and a deployment plan, get back throughput and
response-time predictions for any replica count — without deploying the
replicated system, which is the paper's headline capability.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.errors import ConfigurationError
from ..core.params import ReplicationConfig, StandaloneProfile
from ..core.results import Prediction, ScalabilityCurve
from .multimaster import MultiMasterOptions, predict_multimaster
from .singlemaster import SingleMasterOptions, predict_singlemaster

#: Replicated system designs supported by the models.
MULTI_MASTER = "multi-master"
SINGLE_MASTER = "single-master"
DESIGNS = (MULTI_MASTER, SINGLE_MASTER)


def predict(
    design: str,
    profile: StandaloneProfile,
    config: ReplicationConfig,
    *,
    mm_options: Optional[MultiMasterOptions] = None,
    sm_options: Optional[SingleMasterOptions] = None,
    partition_map=None,
    cross_partition_fraction: float = 0.0,
    partition_weights=None,
    certifier=None,
    partitions: Optional[int] = None,
) -> Prediction:
    """Predict performance of *design* ("multi-master" or "single-master").

    *partition_map* (with the workload's cross-partition fraction and
    partition weights) extends the multi-master model to partial
    replication — see :func:`~repro.models.multimaster.predict_multimaster`.
    The single-master model keeps the full-replication assumption (its
    master must host everything); passing a map there is an error.

    *certifier* (a :class:`~repro.sidb.certifier_api.CertifierSpec` or
    spec name) selects the certification protocol on the multi-master
    model; the single-master design has no shared certifier, so a
    non-default spec there is an error.
    """
    if design == MULTI_MASTER:
        return predict_multimaster(
            profile, config, options=mm_options,
            partition_map=partition_map,
            cross_partition_fraction=cross_partition_fraction,
            partition_weights=partition_weights,
            certifier=certifier,
            partitions=partitions,
        )
    if design == SINGLE_MASTER:
        if partition_map is not None:
            raise ConfigurationError(
                "the partition-aware model covers multi-master only"
            )
        from ..sidb.certifier_api import resolve_certifier_spec

        certifier_spec = resolve_certifier_spec(certifier)
        if certifier_spec is not None and not certifier_spec.is_default:
            raise ConfigurationError(
                "the certifier axis is multi-master only (the certifier "
                f"spec {certifier_spec.kind!r} cannot apply to {design!r})"
            )
        return predict_singlemaster(profile, config, options=sm_options)
    raise ConfigurationError(f"unknown design {design!r}; expected one of {DESIGNS}")


def predict_curve(
    design: str,
    profile: StandaloneProfile,
    config: ReplicationConfig,
    replica_counts: Sequence[int],
    *,
    mm_options: Optional[MultiMasterOptions] = None,
    sm_options: Optional[SingleMasterOptions] = None,
) -> ScalabilityCurve:
    """Predict a whole scalability curve across *replica_counts*."""
    counts = list(replica_counts)
    if not counts:
        raise ConfigurationError("replica_counts must not be empty")
    points = []
    for n in counts:
        prediction = predict(
            design,
            profile,
            config.with_replicas(n),
            mm_options=mm_options,
            sm_options=sm_options,
        )
        points.append(prediction.point)
    return ScalabilityCurve(
        label=f"{design} (predicted)", replica_counts=counts, points=points
    )


def compare_designs(
    profile: StandaloneProfile,
    config: ReplicationConfig,
    replica_counts: Iterable[int],
) -> dict:
    """Predict both designs side by side (capacity-planning helper).

    Returns ``{design: ScalabilityCurve}`` so a planner can see, e.g., where
    the single-master design saturates while multi-master keeps scaling.
    """
    counts = list(replica_counts)
    return {
        design: predict_curve(design, profile, config, counts)
        for design in DESIGNS
    }


def replicas_for_throughput(
    design: str,
    profile: StandaloneProfile,
    config: ReplicationConfig,
    target_throughput: float,
    max_replicas: int = 64,
) -> Optional[int]:
    """Smallest replica count whose predicted throughput meets the target.

    Returns ``None`` when the design cannot reach the target within
    *max_replicas* (e.g. a saturated single-master system) — the dynamic
    provisioning use case from the paper's introduction.
    """
    if target_throughput <= 0:
        raise ConfigurationError("target throughput must be positive")
    for n in range(1, max_replicas + 1):
        prediction = predict(design, profile, config.with_replicas(n))
        if prediction.throughput >= target_throughput:
            return n
    return None
