"""Analytical models predicting replicated-database performance (§3 of the paper)."""

from .aborts import (
    db_update_size_for_abort_rate,
    master_abort_rate,
    multimaster_abort_rate,
    retry_inflation,
    scale_abort_rate,
    standalone_abort_rate,
    success_probability,
)
from .api import (
    DESIGNS,
    MULTI_MASTER,
    SINGLE_MASTER,
    compare_designs,
    predict,
    predict_curve,
    replicas_for_throughput,
)
from .demands import (
    master_mixed_demand,
    master_update_demand,
    multimaster_demand,
    slave_demand,
    standalone_demand,
)
from .multimaster import (
    CW_FIXED_POINT,
    CW_ONE_STEP_LAG,
    MultiMasterOptions,
    predict_multimaster,
)
from .network import GIGABIT, NetworkBudget, budget_for_prediction
from .planning import (
    DeploymentPlan,
    PlacementPlan,
    ProvisioningSchedule,
    plan_deployment,
    plan_placement,
    provisioning_schedule,
    replicas_for_response_time,
)
from .singlemaster import SingleMasterOptions, predict_singlemaster
from .standalone import predict_standalone, predict_standalone_from_config

__all__ = [
    "CW_FIXED_POINT",
    "CW_ONE_STEP_LAG",
    "DESIGNS",
    "DeploymentPlan",
    "GIGABIT",
    "NetworkBudget",
    "budget_for_prediction",
    "ProvisioningSchedule",
    "MULTI_MASTER",
    "SINGLE_MASTER",
    "MultiMasterOptions",
    "SingleMasterOptions",
    "compare_designs",
    "db_update_size_for_abort_rate",
    "master_abort_rate",
    "master_mixed_demand",
    "master_update_demand",
    "multimaster_abort_rate",
    "multimaster_demand",
    "predict",
    "predict_curve",
    "predict_multimaster",
    "predict_singlemaster",
    "predict_standalone",
    "PlacementPlan",
    "plan_deployment",
    "plan_placement",
    "predict_standalone_from_config",
    "provisioning_schedule",
    "replicas_for_response_time",
    "replicas_for_throughput",
    "retry_inflation",
    "scale_abort_rate",
    "slave_demand",
    "standalone_abort_rate",
    "standalone_demand",
    "success_probability",
]
