"""Service-demand equations of Section 3.3.

Each function returns the **mix-average demand of one transaction** at one
resource, combining read work, (retry-inflated) update work, and writeset
application work according to the system design:

* standalone (§3.3.1):     ``D(1)   = Pr*rc + Pw*wc/(1-A1)``
* multi-master (§3.3.2):   ``DMM(N) = Pr*rc + Pw*wc/(1-AN) + (N-1)*Pw*ws``
* SM master (§3.3.3):      per update, ``wc/(1-A'N)``; with extra reads E the
  master demand mixes reads and updates by their throughput shares.
* SM slave (§3.3.3):       per read, ``rc + ws * (applied writesets per read)``
  which reduces to ``rc + (N-1)*(Pw/Pr)*ws`` when no reads execute on the
  master.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ConfigurationError
from ..core.params import ResourceDemand, ServiceDemands, WorkloadMix
from .aborts import retry_inflation


def standalone_demand(
    demands: ServiceDemands, mix: WorkloadMix, abort_rate: float
) -> ResourceDemand:
    """D(1): mix-average standalone demand with retried aborts (§3.3.1)."""
    inflation = retry_inflation(abort_rate) if mix.write_fraction > 0.0 else 1.0
    return ResourceDemand(
        cpu=mix.read_fraction * demands.read.cpu
        + mix.write_fraction * demands.write.cpu * inflation,
        disk=mix.read_fraction * demands.read.disk
        + mix.write_fraction * demands.write.disk * inflation,
    )


def multimaster_demand(
    demands: ServiceDemands,
    mix: WorkloadMix,
    replicas: int,
    abort_rate: float,
    writeset_fanin: Optional[float] = None,
) -> ResourceDemand:
    """DMM(N): per-transaction demand at a multi-master replica (§3.3.2).

    Each replica serves its local mix plus ``(N-1) * Pw`` propagated
    writesets per local transaction; local update attempts are inflated by
    retries (propagated writesets never abort).

    *writeset_fanin* overrides the ``N - 1`` remote-application count —
    the partial-replication extension: with partitions placed on replica
    subsets, each committed update is applied at the replicas hosting its
    partitions, so a balanced placement charges every replica
    ``h - 1`` applications per local update (``h`` = the map's
    :meth:`~repro.partition.placement.PartitionMap.expected_update_fanout`)
    — the per-replica update load as a sum over hosted partitions.
    """
    if replicas < 1:
        raise ConfigurationError("replicas must be >= 1")
    if writeset_fanin is None:
        writeset_fanin = replicas - 1
    if writeset_fanin < 0.0:
        raise ConfigurationError("writeset fan-in must be >= 0")
    inflation = retry_inflation(abort_rate) if mix.write_fraction > 0.0 else 1.0
    remote = writeset_fanin * mix.write_fraction
    return ResourceDemand(
        cpu=mix.read_fraction * demands.read.cpu
        + mix.write_fraction * demands.write.cpu * inflation
        + remote * demands.writeset.cpu,
        disk=mix.read_fraction * demands.read.disk
        + mix.write_fraction * demands.write.disk * inflation
        + remote * demands.writeset.disk,
    )


def master_update_demand(
    demands: ServiceDemands, abort_rate: float
) -> ResourceDemand:
    """Per committed update transaction at the SM master: ``wc/(1-A'N)``."""
    return demands.write.scaled(retry_inflation(abort_rate))


def master_mixed_demand(
    demands: ServiceDemands,
    abort_rate: float,
    update_rate: float,
    extra_read_rate: float,
) -> ResourceDemand:
    """Mix-average master demand when it also serves E extra reads (§3.3.3).

    ``D_master = E/(E+NW) * rc + NW/(E+NW) * wc/(1-A'N)`` with throughput
    shares taken from the current balancing iterate.
    """
    total = update_rate + extra_read_rate
    if total <= 0.0:
        raise ConfigurationError("master serves no transactions")
    read_share = extra_read_rate / total
    write_share = update_rate / total
    inflated = master_update_demand(demands, abort_rate)
    return ResourceDemand(
        cpu=read_share * demands.read.cpu + write_share * inflated.cpu,
        disk=read_share * demands.read.disk + write_share * inflated.disk,
    )


def slave_demand(
    demands: ServiceDemands,
    mix: WorkloadMix,
    replicas: int,
    writesets_per_read: float = None,
) -> ResourceDemand:
    """Per committed read transaction at an SM slave (§3.3.3).

    Each slave applies *all* system writesets; folding that work into the
    read demand gives ``rc + ws * writesets_per_read``.  When
    ``writesets_per_read`` is not supplied it defaults to the balanced-load
    value ``(N-1) * Pw / Pr`` from the paper (each slave serves
    ``N*R/(N-1)`` reads and applies ``N*W`` writesets).
    """
    if replicas < 2:
        raise ConfigurationError("a single-master system with slaves needs N >= 2")
    if writesets_per_read is None:
        if mix.read_fraction <= 0.0:
            raise ConfigurationError("slave demand undefined for write-only mixes")
        writesets_per_read = (replicas - 1) * mix.write_fraction / mix.read_fraction
    if writesets_per_read < 0.0:
        raise ConfigurationError("writesets_per_read must be non-negative")
    return ResourceDemand(
        cpu=demands.read.cpu + demands.writeset.cpu * writesets_per_read,
        disk=demands.read.disk + demands.writeset.disk * writesets_per_read,
    )
