"""Analytical model of the standalone (non-replicated) database.

This is the N=1 baseline of every scalability curve and the reference the
profiler validates against.  The standalone database is a closed network of
the CPU and disk with ``C`` clients and think time ``Z`` (§3.3.1); no load
balancer, no certifier.
"""

from __future__ import annotations

from ..core.params import (
    CPU,
    DISK,
    ReplicationConfig,
    StandaloneProfile,
)
from ..core.results import OperatingPoint, Prediction, ReplicaBreakdown
from ..queueing.mva import solve_mva
from ..queueing.network import ClosedNetwork, queueing_center
from .demands import standalone_demand


def predict_standalone(
    profile: StandaloneProfile,
    clients: int,
    think_time: float = 1.0,
) -> Prediction:
    """Predict standalone throughput and response time for *clients* users.

    The abort rate used is the measured standalone rate A1 from *profile*;
    retried update work inflates the update demand by ``1/(1-A1)``.
    """
    demand = standalone_demand(profile.demands, profile.mix, profile.abort_rate)
    network = ClosedNetwork(
        centers=(
            queueing_center(CPU, demand.cpu),
            queueing_center(DISK, demand.disk),
        ),
        think_time=think_time,
    )
    solution = solve_mva(network, clients)
    point = OperatingPoint(
        throughput=solution.throughput,
        response_time=solution.response_time,
        abort_rate=profile.abort_rate if profile.mix.write_fraction > 0 else 0.0,
        utilization=dict(solution.utilization),
    )
    breakdown = ReplicaBreakdown(
        role="standalone",
        throughput=solution.throughput,
        clients=float(clients),
        utilization=dict(solution.utilization),
        residence_times=dict(solution.residence_times),
    )
    return Prediction(
        replicas=1,
        point=point,
        conflict_window=profile.update_response_time,
        breakdown=(breakdown,),
    )


def predict_standalone_from_config(
    profile: StandaloneProfile, config: ReplicationConfig
) -> Prediction:
    """Standalone prediction using the client/think settings of *config*."""
    return predict_standalone(
        profile,
        clients=config.clients_per_replica,
        think_time=config.think_time,
    )
