"""The telemetry facade each run threads through its components.

One :class:`Telemetry` object is created per run (when the caller asks
for it) and handed to the system, certifier and replicas as a plain
``telemetry`` attribute whose default is ``None``.  Every hot-path call
site is guarded with ``if telemetry is not None``, so a disabled run
executes exactly the same instructions as before this layer existed —
the zero-cost contract that keeps cache keys and artifacts byte-stable.

:class:`TelemetryConfig` is a frozen, picklable value with a stable
``repr``, so an *enabled* configuration participates in engine cache
keys like any other scenario option, while ``None`` (disabled) drops
out of the key entirely.  :class:`TelemetryResult` is the frozen
snapshot attached to run results.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from . import schema
from .events import TelemetryEvent
from .registry import MetricSample, MetricsRegistry
from .spans import Span, Tracer
from .timeline import (
    SERIES_BACKLOG,
    SERIES_COMMITS,
    SERIES_LAG_SECONDS,
    SERIES_LAG_VERSIONS,
    SERIES_QUEUE_DEPTH,
    TimelineSnapshot,
)

#: Commit versions whose commit time is retained for lag-in-seconds.
_COMMIT_TIME_LIMIT = 8192


@dataclass(frozen=True)
class TelemetryConfig:
    """What a run should record (frozen: a cache-key citizen)."""

    enabled: bool = True
    #: Fraction of transactions that produce trace spans (0 disables
    #: tracing; sampling is deterministic, see :mod:`.spans`).
    span_sample_rate: float = 0.0
    #: Virtual seconds between fleet/timeline snapshots.
    snapshot_interval: float = 1.0
    #: Upper bound on retained spans (protects long runs).
    max_spans: int = 50_000
    #: Ring-buffer span retention: keep the *latest* ``max_spans``
    #: instead of the first (long autoscale runs want the recent
    #: window; see :class:`repro.telemetry.spans.Tracer`).
    span_ring: bool = False
    #: Run the online invariant auditor (:mod:`repro.audit`) alongside
    #: recording; the frozen :class:`repro.audit.AuditReport` lands on
    #: :attr:`TelemetryResult.audit`.
    audit: bool = False


def active_config(telemetry) -> Optional[TelemetryConfig]:
    """Normalise a ``telemetry`` argument to a config or ``None``.

    Accepts ``None``, ``True`` (defaults), or a
    :class:`TelemetryConfig`; a config with ``enabled=False`` counts as
    disabled so callers can thread one flag through.
    """
    if telemetry is None or telemetry is False:
        return None
    if telemetry is True:
        return TelemetryConfig()
    if isinstance(telemetry, TelemetryConfig):
        return telemetry if telemetry.enabled else None
    raise TypeError(
        f"telemetry must be None, bool or TelemetryConfig, "
        f"not {type(telemetry).__name__}"
    )


@dataclass(frozen=True)
class TelemetryResult:
    """Everything one run recorded, frozen for result attachment."""

    pillar: str
    config: TelemetryConfig
    samples: Tuple[MetricSample, ...]
    spans: Tuple[Span, ...]
    timeline: Tuple[TimelineSnapshot, ...]
    events: Tuple[TelemetryEvent, ...] = ()
    spans_dropped: int = 0
    #: :class:`repro.audit.AuditReport` when the run was audited;
    #: ``None`` otherwise (default keeps older cached results loading).
    audit: object = None

    def metric_names(self) -> frozenset:
        """The set of metric names this run emitted."""
        return frozenset(sample.name for sample in self.samples)

    def find(self, name: str, **labels) -> Optional[MetricSample]:
        """Look up one sample by name and exact labels."""
        wanted = tuple(sorted((k, str(v)) for k, v in labels.items()))
        for sample in self.samples:
            if sample.name == name and sample.labels == wanted:
                return sample
        return None

    def counter_value(self, name: str, **labels) -> float:
        """A counter's total (0 when never incremented)."""
        sample = self.find(name, **labels)
        return sample.value if sample else 0.0

    def label_values(self, name: str, label: str) -> frozenset:
        """All values one label took for one metric name."""
        return frozenset(
            value
            for sample in self.samples if sample.name == name
            for key, value in sample.labels if key == label
        )


class Telemetry:
    """Live recording state for one run (one per pillar execution)."""

    def __init__(self, config: TelemetryConfig, pillar: str) -> None:
        self.config = config
        self.pillar = pillar
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            sample_rate=config.span_sample_rate,
            max_spans=config.max_spans,
            ring=config.span_ring,
        )
        if config.audit:
            from ..audit import Auditor

            self.auditor = Auditor()
        else:
            #: Call sites double-guard (``telemetry is not None`` and
            #: ``telemetry.auditor is not None``), so an un-audited run
            #: does no audit bookkeeping at all.
            self.auditor = None
        self.events: List[TelemetryEvent] = []
        self.timeline: List[TimelineSnapshot] = []
        self._lock = threading.Lock()
        self._commit_times: Dict[int, float] = {}
        self._commit_order: Deque[int] = deque()
        self._commit_count = 0
        # Pre-resolved hot instruments; registering the fixed-name ones
        # up front also makes the emitted schema independent of whether
        # a particular run happened to exercise them (the parity
        # contract must not depend on, say, observing a conflict).
        self._queue_depth = self.registry.gauge(
            schema.CERTIFIER_QUEUE_DEPTH
        )
        self._certifications = self.registry.counter(schema.CERTIFICATIONS)
        self._certifier_commits = self.registry.counter(
            schema.CERTIFIER_COMMITS
        )
        self._certifier_conflicts = self.registry.counter(
            schema.CERTIFIER_CONFLICTS
        )
        self._read_commits = self.registry.counter(
            schema.TXN_COMMITS, kind="read"
        )
        self._update_commits = self.registry.counter(
            schema.TXN_COMMITS, kind="update"
        )
        self.registry.gauge(schema.CERTIFIER_HISTORY)

    # ------------------------------------------------------------------
    # Transaction flow
    # ------------------------------------------------------------------

    def count_commit(self, is_update: bool) -> None:
        """Count one committed transaction."""
        if is_update:
            self._update_commits.inc()
        else:
            self._read_commits.inc()
        with self._lock:
            self._commit_count += 1

    def count_route(self, replica: str, is_update: bool) -> None:
        """Count one load-balancer routing decision."""
        kind = "update" if is_update else "read"
        self.registry.counter(
            schema.LB_ROUTED, replica=replica, kind=kind
        ).inc()

    # ------------------------------------------------------------------
    # Certifier service boundary
    # ------------------------------------------------------------------

    def certify_begin(self) -> None:
        """A certification request entered the certifier service."""
        self._queue_depth.add(1.0)

    def certify_end(self) -> None:
        """Its certification round-trip completed."""
        self._queue_depth.add(-1.0)

    def on_certification(self, committed: bool, conflicts: int) -> None:
        """Count one certifier decision (called by the certifier)."""
        self._certifications.inc()
        if committed:
            self._certifier_commits.inc()
        else:
            self._certifier_conflicts.inc()

    def note_commit(self, commit_version: int, now: float) -> None:
        """Remember when a version committed (for lag-in-seconds)."""
        with self._lock:
            self._commit_times[commit_version] = now
            self._commit_order.append(commit_version)
            while len(self._commit_order) > _COMMIT_TIME_LIMIT:
                old = self._commit_order.popleft()
                self._commit_times.pop(old, None)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def observe_staleness(
        self, replica: str, snapshot_version: int, latest_version: int,
        now: float,
    ) -> None:
        """Record how stale the snapshot a transaction received was,
        in versions behind the certifier and seconds behind the oldest
        missed commit (sampled at begin time — GSI's staleness window).
        """
        versions = float(max(0, latest_version - snapshot_version))
        self.registry.histogram(
            schema.SNAPSHOT_STALENESS_VERSIONS,
            bounds=schema.STALENESS_VERSION_BUCKETS,
            replica=replica,
        ).observe(versions)
        seconds = (
            self._lag_seconds(snapshot_version, now) if versions else 0.0
        )
        self.registry.histogram(
            schema.SNAPSHOT_STALENESS_SECONDS,
            bounds=schema.DEFAULT_LATENCY_BUCKETS,
            replica=replica,
        ).observe(seconds)

    def observe_apply(self, replica: str, latency: float) -> None:
        """Record one writeset's enqueue-to-applied latency."""
        self.registry.histogram(
            schema.APPLY_LATENCY,
            bounds=schema.DEFAULT_LATENCY_BUCKETS,
            replica=replica,
        ).observe(latency)

    def apply_span(
        self, commit_version: int, replica: str, start: float, end: float
    ) -> None:
        """Record an ``apply`` span if the committing txn was traced."""
        trace_id = self.tracer.trace_for(commit_version)
        if trace_id is not None:
            self.tracer.add_span(
                trace_id, schema.SPAN_APPLY, start, end,
                subject=replica, version=commit_version,
            )

    # ------------------------------------------------------------------
    # Control plane and operations
    # ------------------------------------------------------------------

    def count_decision(self, action: str, target: int) -> None:
        """Count one autoscale controller decision."""
        self.registry.counter(
            schema.CONTROLLER_DECISIONS, action=action
        ).inc()
        self.registry.gauge(schema.CONTROLLER_TARGET).set(float(target))

    def observe_slo_burn(self, window: str, signal: str,
                         burn: float) -> None:
        """Record one (window, signal) error-budget burn rate."""
        self.registry.gauge(
            schema.SLO_BURN_RATE, window=window, signal=signal
        ).set(burn)

    # ------------------------------------------------------------------
    # Performance observability (online capacity estimation)
    # ------------------------------------------------------------------

    def observe_capacity(self, replica: str, ratio: float) -> None:
        """Record one replica's estimated effective-capacity ratio."""
        self.registry.gauge(
            schema.EFFECTIVE_CAPACITY, replica=replica
        ).set(ratio)

    def observe_model_residual(self, residual: float) -> None:
        """Record the model-vs-observed relative throughput residual."""
        self.registry.gauge(schema.MODEL_RESIDUAL).set(residual)

    def count_drift_verdict(self) -> None:
        """Count one control tick judged outside the crossval envelope."""
        self.registry.counter(schema.MODEL_DRIFT).inc()

    def count_gray_detection(self, replica: str) -> None:
        """Count one gray-failure detection on *replica*."""
        self.registry.counter(
            schema.GRAY_DETECTIONS, replica=replica
        ).inc()

    def record_event(self, event: TelemetryEvent) -> None:
        """Append one timeline event and count its kind."""
        self.events.append(event)
        self.registry.counter(schema.OPS_EVENTS, kind=event.kind).inc()

    def ingest_events(self, events) -> None:
        """Record a batch of events (ops harness hand-off)."""
        for event in events:
            self.record_event(event)

    # ------------------------------------------------------------------
    # Fleet sampling (timeline)
    # ------------------------------------------------------------------

    def _lag_seconds(self, applied_version: int, now: float) -> float:
        with self._lock:
            committed_at = self._commit_times.get(applied_version + 1)
        if committed_at is None:
            return 0.0
        return max(0.0, now - committed_at)

    def sample_fleet(self, now: float, replicas, certifier=None) -> None:
        """Sample per-replica replication state and snapshot headline
        series onto the timeline.

        Works on both pillars: sim and live replicas expose the same
        ``name`` / ``applied_version`` / ``apply_backlog`` surface; a
        replica with a ``db`` additionally reports its version-store
        size (live only, see :data:`~repro.telemetry.schema.LIVE_ONLY`).
        """
        fleet = [r for r in list(replicas) if not getattr(r, "failed", False)]
        if certifier is not None:
            latest = certifier.latest_version
            history = getattr(certifier, "history_size", None)
            if history is not None:
                self.registry.gauge(schema.CERTIFIER_HISTORY).set(
                    float(history)
                )
        else:
            latest = max(
                (r.applied_version for r in fleet), default=0
            )
        max_lag_v = max_lag_s = max_backlog = 0.0
        for replica in fleet:
            lag_v = float(max(0, latest - replica.applied_version))
            self.registry.gauge(
                schema.REPLICATION_LAG_VERSIONS, replica=replica.name
            ).set(lag_v)
            lag_s = self._lag_seconds(replica.applied_version, now)
            self.registry.gauge(
                schema.REPLICATION_LAG_SECONDS, replica=replica.name
            ).set(lag_s)
            backlog = float(replica.apply_backlog)
            self.registry.gauge(
                schema.CHANNEL_BACKLOG, replica=replica.name
            ).set(backlog)
            db = getattr(replica, "db", None)
            if db is not None:
                self.registry.gauge(
                    schema.VERSION_STORE, replica=replica.name
                ).set(float(db.retained_versions()))
            max_lag_v = max(max_lag_v, lag_v)
            max_lag_s = max(max_lag_s, lag_s)
            max_backlog = max(max_backlog, backlog)
        with self._lock:
            commits = float(self._commit_count)
        self.timeline.append(TimelineSnapshot(
            time=now,
            values=(
                (SERIES_QUEUE_DEPTH, self._queue_depth.value),
                (SERIES_LAG_VERSIONS, max_lag_v),
                (SERIES_LAG_SECONDS, max_lag_s),
                (SERIES_BACKLOG, max_backlog),
                (SERIES_COMMITS, commits),
            ),
        ))

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def result(self) -> TelemetryResult:
        """Freeze everything recorded so far."""
        # Span-ring data loss goes through the registry so every export
        # (Prometheus included) shows it, not just the dashboard.  The
        # delta form keeps repeated result() calls idempotent.
        dropped = self.registry.counter(schema.SPANS_DROPPED)
        dropped.inc(float(self.tracer.dropped) - dropped.value)
        audit = None
        if self.auditor is not None:
            audit = self.auditor.report()
            self.registry.gauge(schema.AUDIT_CHECKS).set(
                float(audit.total_checks)
            )
            self.registry.gauge(schema.AUDIT_VIOLATIONS).set(
                float(audit.total_violations)
            )
        return TelemetryResult(
            pillar=self.pillar,
            config=self.config,
            samples=self.registry.snapshot(),
            spans=tuple(self.tracer.spans),
            timeline=tuple(self.timeline),
            events=tuple(sorted(
                self.events, key=lambda e: (e.time, e.kind, e.subject)
            )),
            spans_dropped=self.tracer.dropped,
            audit=audit,
        )
