"""A small labelled-metrics registry: counters, gauges, histograms.

Design constraints (ISSUE 6):

* **Zero cost when disabled.**  Components hold a ``telemetry``
  attribute that is ``None`` by default; every hot-path call site is
  guarded by ``if telemetry is not None`` so a disabled run allocates
  nothing and calls nothing — the registry only exists when a run asked
  for it.
* **Safe under DES virtual time and live threads.**  One shared lock
  guards instrument creation and every mutation.  The DES is
  single-threaded so the lock is uncontended there; the live cluster's
  instrument updates are tiny compared to its scaled sleeps, keeping
  the measured overhead well under the <5% budget
  (``benchmarks/bench_telemetry_overhead.py`` guards this).
* **Fixed buckets.**  Histograms use fixed upper bounds chosen at
  creation, so exporting is allocation-free and the Prometheus text
  rendering (cumulative buckets + ``+Inf``) is exact.

Instruments are identified by ``(name, sorted label items)``; asking for
the same identity twice returns the same instrument, so call sites can
simply re-resolve instead of caching handles.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.errors import ConfigurationError

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = COUNTER

    def __init__(self, name: str, labels, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (default 1) to the counter."""
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value with a high-water mark.

    Sampled series (replication lag, queue depth) keep both the last
    observed value and the maximum ever observed, so a dashboard can
    show transient peaks that interval sampling would otherwise miss.
    """

    kind = GAUGE

    def __init__(self, name: str, labels, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        with self._lock:
            self.value = value
            if value > self.max_value:
                self.max_value = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by *delta* (queue-depth style usage)."""
        with self._lock:
            self.value += delta
            if self.value > self.max_value:
                self.max_value = self.value


class Histogram:
    """Fixed-bucket histogram (upper-bound inclusive, like Prometheus).

    ``bucket_counts[i]`` counts observations ``v <= bounds[i]`` that did
    not fit an earlier bucket; the final slot counts the overflow
    (``v > bounds[-1]``, the ``+Inf`` bucket).
    """

    kind = HISTOGRAM

    def __init__(
        self,
        name: str,
        labels,
        lock: threading.Lock,
        bounds: Sequence[float],
    ) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned or list(cleaned) != sorted(set(cleaned)):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be non-empty and "
                f"strictly increasing"
            )
        self.name = name
        self.labels = labels
        self._lock = lock
        self.bounds = cleaned
        self.bucket_counts = [0] * (len(cleaned) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1


@dataclass(frozen=True)
class MetricSample:
    """One instrument's state, frozen for result attachment/export."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    kind: str
    value: float = 0.0
    max_value: float = 0.0
    sum: float = 0.0
    count: int = 0
    bounds: Tuple[float, ...] = ()
    buckets: Tuple[int, ...] = ()

    @property
    def mean(self) -> float:
        """Histogram mean (0 for an empty histogram)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate a histogram quantile from the bucket counts.

        Returns the upper bound of the bucket holding the q-th
        observation (the overflow bucket reports the largest finite
        bound — the estimate is saturated, not extrapolated).
        """
        if self.kind != HISTOGRAM or not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def label_text(self) -> str:
        """Render labels as ``{k="v",...}`` (empty string if none)."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


class MetricsRegistry:
    """Creates and owns instruments; thread-safe, label-aware."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Tuple], object] = {}

    def _resolve(self, factory, kind: str, name: str, labels):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(key[1])
                self._instruments[key] = instrument
            elif instrument.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter for (*name*, *labels*)."""
        return self._resolve(
            lambda lk: Counter(name, lk, self._lock), COUNTER, name, labels
        )

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge for (*name*, *labels*)."""
        return self._resolve(
            lambda lk: Gauge(name, lk, self._lock), GAUGE, name, labels
        )

    def histogram(
        self, name: str, bounds: Sequence[float], **labels
    ) -> Histogram:
        """Get or create the histogram for (*name*, *labels*)."""
        return self._resolve(
            lambda lk: Histogram(name, lk, self._lock, bounds),
            HISTOGRAM, name, labels,
        )

    def names(self) -> frozenset:
        """The set of metric names registered so far."""
        with self._lock:
            return frozenset(name for name, _ in self._instruments)

    def snapshot(self) -> Tuple[MetricSample, ...]:
        """Freeze every instrument into picklable samples."""
        with self._lock:
            samples: List[MetricSample] = []
            for (name, labels), inst in sorted(
                self._instruments.items(), key=lambda item: item[0]
            ):
                if inst.kind == COUNTER:
                    samples.append(MetricSample(
                        name=name, labels=labels, kind=COUNTER,
                        value=inst.value,
                    ))
                elif inst.kind == GAUGE:
                    samples.append(MetricSample(
                        name=name, labels=labels, kind=GAUGE,
                        value=inst.value, max_value=inst.max_value,
                    ))
                else:
                    samples.append(MetricSample(
                        name=name, labels=labels, kind=HISTOGRAM,
                        sum=inst.sum, count=inst.count,
                        bounds=inst.bounds,
                        buckets=tuple(inst.bucket_counts),
                    ))
            return tuple(samples)
