"""Performance-observability primitives: estimator math and the report.

The paper predicts replicated scalability from a standalone profile, but
a deployed system has to *keep checking* that prediction while it runs:
a machine silently operating at partial speed (a gray failure) breaks
both the capacity-weighted load balancer's declared weights and the
feedforward controller's sizing, and neither the health monitor (which
only sees crashes) nor the end-to-end SLO (which lags) will say why.

This module holds the math and the frozen report types; the control-side
glue that feeds them from live runs lives in
:mod:`repro.control.estimator`.  Everything here is pure bookkeeping on
values the caller reads — no clocks, no RNG, no event scheduling — so an
engaged estimator can never perturb a deterministic run (the same
zero-cost contract as the rest of the telemetry layer).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..core.errors import ConfigurationError


class Ewma:
    """Half-life exponentially weighted moving average.

    Time-aware: an update after ``dt`` seconds weighs the old value by
    ``0.5 ** (dt / half_life)``, so irregular observation intervals
    (live control ticks jitter) still decay at a fixed wall rate.
    ``value`` is ``None`` until the first update unless seeded with
    *initial* — the estimator seeds with the declared capacity so a
    replica is presumed healthy until measured.
    """

    def __init__(self, half_life: float,
                 initial: Optional[float] = None) -> None:
        if half_life <= 0.0:
            raise ConfigurationError("EWMA half-life must be positive")
        self.half_life = half_life
        self.value = initial

    def update(self, value: float, dt: float = 1.0) -> float:
        """Fold one observation taken *dt* seconds after the previous."""
        if self.value is None:
            self.value = float(value)
        else:
            weight = 0.5 ** (max(dt, 0.0) / self.half_life)
            self.value = weight * self.value + (1.0 - weight) * float(value)
        return self.value


class WindowedQuantile:
    """Exact empirical quantiles over a bounded sliding window."""

    def __init__(self, window: int = 64) -> None:
        if window <= 0:
            raise ConfigurationError("quantile window must be positive")
        self._values: Deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        """Add one observation (the oldest falls off the window)."""
        self._values.append(float(value))

    def quantile(self, q: float) -> float:
        """The q-th empirical quantile (0.0 while the window is empty)."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        index = min(len(ordered) - 1,
                    max(0, int(round(q * len(ordered))) - 1))
        return ordered[index]

    def __len__(self) -> int:
        return len(self._values)


# ---------------------------------------------------------------------
# Frozen report types
# ---------------------------------------------------------------------

@dataclass(frozen=True)
class EffectiveCapacity:
    """One replica's live capacity estimate at one observation."""

    time: float
    replica: str
    #: Capacity multiplier the fleet was configured with.
    declared: float
    #: What the replica is measured to deliver right now (same units).
    estimated: float
    #: Bottleneck (max of CPU/disk) utilization over the last window.
    utilization: float = 0.0

    @property
    def ratio(self) -> float:
        """Estimated over declared: 1.0 healthy, 0.5 a halved machine."""
        if self.declared <= 0.0:
            return 1.0
        return self.estimated / self.declared


@dataclass(frozen=True)
class CapacitySnapshot:
    """The whole fleet's capacity estimates at one control tick."""

    time: float
    capacities: Tuple[EffectiveCapacity, ...]

    def ratio_for(self, replica: str) -> Optional[float]:
        """One replica's estimated/declared ratio (None if absent)."""
        for cap in self.capacities:
            if cap.replica == replica:
                return cap.ratio
        return None


@dataclass(frozen=True)
class DriftPoint:
    """Model-vs-observed comparison at one control tick."""

    time: float
    members: int
    offered_rate: float
    #: min(offered, model capacity at this member count) — what the
    #: analytic model says this tick should have delivered.
    predicted_throughput: float
    observed_throughput: float
    #: Relative residual: (observed - predicted) / predicted.
    residual: float
    #: Diagnostic p95 comparison (predicted is 3x the model's mean
    #: response — an exponential-tail rule of thumb, not a fit).
    predicted_p95: float = 0.0
    observed_p95: float = 0.0
    #: This tick fell outside the crossval envelope.
    breach: bool = False
    #: Enough consecutive breaches: the model is declared drifted.
    verdict: bool = False


@dataclass(frozen=True)
class GrayEvent:
    """A gray-failure detection or recovery on one replica."""

    time: float
    replica: str
    ratio: float
    kind: str  # "gray-detect" | "gray-clear"


@dataclass(frozen=True)
class ComponentSignal:
    """One component's standing in the slowest-component ranking."""

    component: str
    #: Utilization-like score in [0, ~1]: resource utilization for
    #: CPU/disk, normalised residence for queues.
    score: float
    detail: str = ""


@dataclass(frozen=True)
class PerfReport:
    """Everything the performance observer saw during one run."""

    pillar: str
    #: Capacity source the run consumed: ``declared`` (observe-only) or
    #: ``estimated`` (LB weights and controller sizing followed it).
    source: str
    snapshots: Tuple[CapacitySnapshot, ...] = ()
    drift: Tuple[DriftPoint, ...] = ()
    detections: Tuple[GrayEvent, ...] = ()
    attribution: Tuple[ComponentSignal, ...] = ()

    @property
    def drift_verdict(self) -> bool:
        """Did any tick conclude the analytic model has drifted?"""
        return any(point.verdict for point in self.drift)

    @property
    def final_capacities(self) -> Tuple[EffectiveCapacity, ...]:
        """The last snapshot's estimates (empty if never sampled)."""
        if not self.snapshots:
            return ()
        return self.snapshots[-1].capacities

    def detection_latency(self, onset: float,
                          replica: Optional[str] = None) -> Optional[float]:
        """Seconds from a brownout *onset* to the first detection at or
        after it (optionally restricted to one replica)."""
        for event in self.detections:
            if event.kind != "gray-detect" or event.time < onset:
                continue
            if replica is not None and event.replica != replica:
                continue
            return event.time - onset
        return None

    # -- rendering -----------------------------------------------------

    def to_text(self, max_rows: int = 24) -> str:
        """Render the capacity timeline, detections, drift verdict and
        slowest-component attribution as one text report."""
        lines = [
            f"performance observability — {self.pillar} pillar, "
            f"capacity source: {self.source}"
        ]
        lines.extend(self._capacity_lines(max_rows))
        lines.extend(self._detection_lines())
        lines.extend(self._drift_lines())
        lines.extend(self._attribution_lines())
        return "\n".join(lines)

    def _replica_names(self) -> List[str]:
        names: List[str] = []
        for snap in self.snapshots:
            for cap in snap.capacities:
                if cap.replica not in names:
                    names.append(cap.replica)
        return names

    def _capacity_lines(self, max_rows: int) -> List[str]:
        if not self.snapshots:
            return ["  no capacity snapshots recorded"]
        names = self._replica_names()
        lines = ["  effective capacity (estimated/declared; '!' = degraded):"]
        width = max(8, max(len(n) for n in names))
        header = "    " + f"{'t(s)':>8s}  " + "  ".join(
            f"{name:>{width}s}" for name in names
        )
        lines.append(header)
        stride = max(1, (len(self.snapshots) + max_rows - 1) // max_rows)
        shown = list(self.snapshots[::stride])
        if self.snapshots[-1] not in shown:
            shown.append(self.snapshots[-1])
        for snap in shown:
            cells = []
            for name in names:
                ratio = snap.ratio_for(name)
                if ratio is None:
                    cells.append(f"{'—':>{width}s}")
                else:
                    mark = "!" if ratio < 0.8 else " "
                    cells.append(f"{ratio:>{width - 1}.2f}{mark}")
            lines.append(f"    {snap.time:>8.1f}  " + "  ".join(cells))
        return lines

    def _detection_lines(self) -> List[str]:
        lines = ["  gray-failure detections:"]
        if not self.detections:
            lines.append("    none — no replica fell below the threshold")
            return lines
        for event in self.detections:
            what = ("degraded" if event.kind == "gray-detect"
                    else "recovered")
            lines.append(
                f"    t={event.time:7.1f}  {event.replica} {what} "
                f"(estimated {event.ratio:.2f}x declared)"
            )
        return lines

    def _drift_lines(self) -> List[str]:
        if not self.drift:
            return ["  model drift: not evaluated (no profile attached)"]
        breaches = sum(1 for p in self.drift if p.breach)
        worst = max(self.drift, key=lambda p: abs(p.residual))
        verdict = "DRIFT" if self.drift_verdict else "on-model"
        lines = [
            f"  model drift: {verdict} — {len(self.drift)} ticks "
            f"evaluated, {breaches} outside the envelope, worst residual "
            f"{worst.residual:+.1%} at t={worst.time:.1f}"
        ]
        last = self.drift[-1]
        lines.append(
            f"    last tick: predicted {last.predicted_throughput:.1f} "
            f"tps, observed {last.observed_throughput:.1f} tps "
            f"({last.residual:+.1%}); p95 predicted "
            f"{last.predicted_p95 * 1000:.0f} ms, observed "
            f"{last.observed_p95 * 1000:.0f} ms"
        )
        return lines

    def _attribution_lines(self) -> List[str]:
        if not self.attribution:
            return []
        lines = ["  slowest components:"]
        for rank, signal in enumerate(self.attribution, start=1):
            detail = f"  ({signal.detail})" if signal.detail else ""
            lines.append(
                f"    {rank}. {signal.component:<20s} "
                f"score {signal.score:.2f}{detail}"
            )
        return lines
