"""The shared run-timeline event schema.

Everything that happens *to* a run — replica crashes, failure
detections, replacements, rolling-upgrade steps, controller actions —
is a :class:`TelemetryEvent`: a timestamped, kinded record about one
subject.  The operations layer's ``OpsEvent`` is a subclass (keeping
its ``replica`` field name as an alias), so ``repro ops`` and
``repro metrics`` render one consistent timeline format through
:func:`render_events`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class TelemetryEvent:
    """One timestamped event on a run's timeline."""

    #: Seconds since the start of the run (virtual time).
    time: float
    #: Event kind (e.g. ``crash``, ``detect``, ``replace``).
    kind: str
    #: What the event is about (usually a replica name).
    subject: str = ""
    #: Free-form elaboration (e.g. ``"replaces replica1"``).
    detail: str = ""

    def to_text(self) -> str:
        """One timeline line, e.g. ``t=   12.00s  crash   replica1``."""
        detail = f" ({self.detail})" if self.detail else ""
        return f"t={self.time:8.2f}s  {self.kind:<16s} {self.subject}{detail}"


def render_events(
    events: Iterable[TelemetryEvent], indent: str = "    "
) -> List[str]:
    """Render events (sorted by time) as indented timeline lines."""
    ordered = sorted(events, key=lambda e: (e.time, e.kind, e.subject))
    return [indent + event.to_text() for event in ordered]
