"""Causal replication tracing: link commit → certify → apply per replica.

A sampled update transaction leaves spans at every pipeline stage
(:mod:`.spans`); the appliers hang their ``apply`` spans onto the same
trace through the (commit version → trace) map, so after a run the
spans of one trace form a small causal graph:

    route ─ execute ─ certify ─ propagate ─┬─ apply@replica0
                                           ├─ apply@replica1
                                           └─ ...

This module reconstructs that graph from a frozen
:class:`~repro.telemetry.TelemetryResult` and answers the paper's
central observability question — *where does a committed writeset spend
its replication lag?* — by attributing each replica's end-to-end lag
(certification start to local apply completion) to three hops:

* **queue** — inside the certifier service (the certification
  round-trip, §6.3.2's certifier delay);
* **channel** — between the commit decision leaving the certifier and
  the replica starting to apply (propagation + apply-queue wait);
* **apply** — the local writeset application itself.

Everything here is pure post-processing: deterministic for a given
result, no clocks, no randomness.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import schema
from .spans import Span


@dataclass(frozen=True)
class CausalEdge:
    """One happened-before edge in a transaction's causal graph."""

    parent: str
    child: str
    subject: str = ""


@dataclass(frozen=True)
class CausalTrace:
    """One traced transaction's spans, stitched into a causal graph."""

    trace_id: int
    #: Commit version key (``None`` for aborted/read-only traces): a
    #: global version int, or a per-shard string key like ``"s2v17"``
    #: (:func:`repro.sidb.certifier_api.shard_version_key`) when the
    #: run used the sharded certifier.
    version: Optional[object]
    spans: Tuple[Span, ...]
    edges: Tuple[CausalEdge, ...]

    @property
    def committed(self) -> bool:
        return self.version is not None


@dataclass(frozen=True)
class ReplicationHop:
    """One writeset's per-hop lag breakdown at one replica."""

    trace_id: int
    #: Global version int or per-shard string key ("s2v17").
    version: object
    replica: str
    queue: float
    channel: float
    apply: float

    @property
    def total(self) -> float:
        """End-to-end lag: certification start to local apply end."""
        return self.queue + self.channel + self.apply


@dataclass(frozen=True)
class ReplicaPath:
    """Aggregate hop attribution for one replica."""

    replica: str
    hops: int
    mean_queue: float
    mean_channel: float
    mean_apply: float
    max_total: float

    @property
    def mean_total(self) -> float:
        return self.mean_queue + self.mean_channel + self.mean_apply


@dataclass(frozen=True)
class CriticalPathReport:
    """Replication critical-path analysis of one telemetry result."""

    pillar: str
    hops: Tuple[ReplicationHop, ...]
    replicas: Tuple[ReplicaPath, ...]
    #: Fraction of summed end-to-end lag the three hops account for
    #: (clamping negative channel gaps is the only loss, so this should
    #: sit at ~1.0; the acceptance bar is >= 0.95).
    attributed_fraction: float
    traces_seen: int
    traces_committed: int


def _spans_by_trace(spans: Sequence[Span]) -> Dict[int, List[Span]]:
    grouped: Dict[int, List[Span]] = defaultdict(list)
    for span in spans:
        grouped[span.trace_id].append(span)
    for group in grouped.values():
        group.sort(key=lambda s: (s.start, s.span_id))
    return grouped


def _committed_certify(spans: Sequence[Span]) -> Optional[Span]:
    for span in reversed(spans):
        if span.name == schema.SPAN_CERTIFY and span.tag("committed") == "True":
            return span
    return None


def _trace_version(spans: Sequence[Span]) -> Optional[object]:
    for span in spans:
        if span.name == schema.SPAN_APPLY:
            version = span.tag("version")
            if version:
                try:
                    return int(version)
                except ValueError:
                    # Sharded runs key apply spans by a per-shard string
                    # ("s2v17"); the key only needs to be hashable here.
                    return version
    return None


def causal_traces(result) -> Tuple[CausalTrace, ...]:
    """Reconstruct every trace's causal graph from *result*'s spans."""
    traces: List[CausalTrace] = []
    for trace_id, spans in sorted(_spans_by_trace(result.spans).items()):
        edges: List[CausalEdge] = []
        route = next(
            (s for s in spans if s.name == schema.SPAN_ROUTE), None
        )
        executes = [s for s in spans if s.name == schema.SPAN_EXECUTE]
        certifies = [s for s in spans if s.name == schema.SPAN_CERTIFY]
        propagate = next(
            (s for s in spans if s.name == schema.SPAN_PROPAGATE), None
        )
        applies = [s for s in spans if s.name == schema.SPAN_APPLY]
        if route is not None:
            for execute in executes:
                edges.append(CausalEdge(
                    schema.SPAN_ROUTE, schema.SPAN_EXECUTE,
                    execute.subject,
                ))
        for execute in executes:
            attempt = execute.tag("attempt")
            match = next(
                (c for c in certifies if c.tag("attempt") == attempt),
                None,
            )
            if match is not None:
                edges.append(CausalEdge(
                    schema.SPAN_EXECUTE, schema.SPAN_CERTIFY,
                    match.subject,
                ))
        committed = _committed_certify(spans)
        if committed is not None and propagate is not None:
            edges.append(CausalEdge(
                schema.SPAN_CERTIFY, schema.SPAN_PROPAGATE,
                propagate.subject,
            ))
        for apply_span in applies:
            parent = (
                schema.SPAN_PROPAGATE if propagate is not None
                else schema.SPAN_CERTIFY
            )
            edges.append(CausalEdge(
                parent, schema.SPAN_APPLY, apply_span.subject,
            ))
        traces.append(CausalTrace(
            trace_id=trace_id,
            version=_trace_version(spans),
            spans=tuple(spans),
            edges=tuple(edges),
        ))
    return tuple(traces)


def edge_schema(result) -> frozenset:
    """The set of (parent, child) span-name pairs the run produced.

    The DES-vs-live parity contract: the same scenario on both pillars
    yields the same edge schema, because both emit the same span
    lifecycle.
    """
    return frozenset(
        (edge.parent, edge.child)
        for trace in causal_traces(result)
        for edge in trace.edges
    )


def critical_path(result) -> CriticalPathReport:
    """Attribute per-replica replication lag to queue/channel/apply."""
    hops: List[ReplicationHop] = []
    traces = causal_traces(result)
    committed = 0
    measured = attributed = 0.0
    for trace in traces:
        spans = trace.spans
        certify = _committed_certify(spans)
        if certify is None:
            continue
        committed += 1
        for span in spans:
            if span.name != schema.SPAN_APPLY or trace.version is None:
                continue
            channel = span.start - certify.end
            hop = ReplicationHop(
                trace_id=trace.trace_id,
                version=trace.version,
                replica=span.subject,
                queue=certify.duration,
                channel=max(0.0, channel),
                apply=span.duration,
            )
            hops.append(hop)
            # End-to-end lag as independently measured off the span
            # endpoints; the hop sum differs only where a negative
            # channel gap was clamped.
            measured += span.end - certify.start
            attributed += hop.total
    per_replica: Dict[str, List[ReplicationHop]] = defaultdict(list)
    for hop in hops:
        per_replica[hop.replica].append(hop)
    replicas = tuple(
        ReplicaPath(
            replica=name,
            hops=len(group),
            mean_queue=sum(h.queue for h in group) / len(group),
            mean_channel=sum(h.channel for h in group) / len(group),
            mean_apply=sum(h.apply for h in group) / len(group),
            max_total=max(h.total for h in group),
        )
        for name, group in sorted(per_replica.items())
    )
    fraction = 1.0 if measured <= 0.0 else min(1.0, attributed / measured)
    return CriticalPathReport(
        pillar=result.pillar,
        hops=tuple(hops),
        replicas=replicas,
        attributed_fraction=fraction,
        traces_seen=len(traces),
        traces_committed=committed,
    )


def _segments(path: ReplicaPath, width: int) -> str:
    total = path.mean_total
    if total <= 0.0:
        return ""
    cells = []
    for char, value in (("Q", path.mean_queue), ("C", path.mean_channel),
                        ("A", path.mean_apply)):
        cells.append(char * int(round(width * value / total)))
    return "".join(cells)[:width]


def render_critical_path(report: CriticalPathReport,
                         width: int = 24) -> str:
    """ASCII critical-path view: one attribution bar per replica."""
    lines = [
        f"replication critical path — {report.pillar} pillar",
        f"  traces: {report.traces_seen} sampled, "
        f"{report.traces_committed} committed, "
        f"{len(report.hops)} apply hops",
    ]
    if not report.replicas:
        lines.append("  (no committed apply hops traced — raise the "
                     "span sample rate?)")
        return "\n".join(lines)
    lines.append(
        "  mean lag per hop (Q=certifier queue, C=channel, A=apply):"
    )
    for path in report.replicas:
        lines.append(
            f"    {path.replica:<12s} n={path.hops:<5d} "
            f"total {1e3 * path.mean_total:8.2f}ms  "
            f"[{_segments(path, width):<{width}s}]  "
            f"q {1e3 * path.mean_queue:7.2f}  "
            f"c {1e3 * path.mean_channel:7.2f}  "
            f"a {1e3 * path.mean_apply:7.2f}"
        )
    lines.append(
        f"  attributed: {100.0 * report.attributed_fraction:.1f}% of "
        f"measured end-to-end replication lag"
    )
    return "\n".join(lines)


def causal_chrome_trace(result) -> dict:
    """A multi-track Chrome trace: one track per replica.

    Each committed writeset appears as a ``channel`` slice (commit
    decision to apply start) followed by an ``apply`` slice on its
    replica's track, plus a ``certify`` slice on the shared certifier
    track — load the JSON in ``chrome://tracing`` / Perfetto to scrub
    the replication critical path visually.
    """
    report = critical_path(result)
    traces = {t.trace_id: t for t in causal_traces(result)}
    pid = 1
    tids: Dict[str, int] = {"certifier": 0}
    events: List[dict] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "thread_name",
        "args": {"name": f"certifier [{result.pillar}]"},
    }]
    certified: set = set()
    for hop in report.hops:
        tid = tids.get(hop.replica)
        if tid is None:
            tid = len(tids)
            tids[hop.replica] = tid
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": f"{hop.replica} [{result.pillar}]"},
            })
        trace = traces.get(hop.trace_id)
        certify_span = apply_span = None
        if trace is not None:
            certify_span = _committed_certify(trace.spans)
            apply_span = next(
                (s for s in trace.spans
                 if s.name == schema.SPAN_APPLY
                 and s.subject == hop.replica),
                None,
            )
        if certify_span is None or apply_span is None:
            continue
        if hop.version not in certified:
            certified.add(hop.version)
            events.append({
                "ph": "X", "pid": pid, "tid": 0,
                "name": f"certify v{hop.version}",
                "ts": certify_span.start * 1e6,
                "dur": max(0.0, certify_span.duration) * 1e6,
                "args": {"version": hop.version},
            })
        events.append({
            "ph": "X", "pid": pid, "tid": tid,
            "name": f"channel v{hop.version}",
            "ts": certify_span.end * 1e6,
            "dur": max(0.0, apply_span.start - certify_span.end) * 1e6,
            "args": {"version": hop.version},
        })
        events.append({
            "ph": "X", "pid": pid, "tid": tid,
            "name": f"apply v{hop.version}",
            "ts": apply_span.start * 1e6,
            "dur": max(0.0, apply_span.duration) * 1e6,
            "args": {"version": hop.version},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"pillar": result.pillar, "kind": "causal"},
    }


def write_causal_chrome_trace(path, result) -> None:
    """Write :func:`causal_chrome_trace` JSON to *path*."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(causal_chrome_trace(result), handle, indent=1)


def staleness_summary(result, hosted: Optional[Dict[str, Sequence[int]]]
                      = None) -> List[str]:
    """Per-replica (and optionally per-partition) snapshot staleness.

    *hosted* maps replica names to the partitions they host; when
    given, per-partition rows aggregate the histograms of the hosting
    replicas (the partial-replication view of GSI staleness).
    """
    lines: List[str] = []
    by_replica: Dict[str, Tuple[object, object]] = {}
    for sample in result.samples:
        if sample.name not in (schema.SNAPSHOT_STALENESS_VERSIONS,
                               schema.SNAPSHOT_STALENESS_SECONDS):
            continue
        replica = dict(sample.labels).get("replica", "")
        slot = by_replica.setdefault(replica, [None, None])
        if sample.name == schema.SNAPSHOT_STALENESS_VERSIONS:
            slot[0] = sample
        else:
            slot[1] = sample
    if not by_replica:
        return lines
    lines.append("  snapshot staleness (p50/p95 versions · p95 seconds):")
    for replica, (versions, seconds) in sorted(by_replica.items()):
        if versions is None:
            continue
        p95s = seconds.quantile(0.95) if seconds is not None else 0.0
        lines.append(
            f"    {replica:<12s} "
            f"{versions.quantile(0.50):6.1f} / "
            f"{versions.quantile(0.95):6.1f} v · "
            f"{p95s:8.4f} s  (n={versions.count})"
        )
    if hosted:
        partitions: Dict[int, List[str]] = defaultdict(list)
        for replica, parts in hosted.items():
            for part in parts or ():
                partitions[part].append(replica)
        if partitions:
            lines.append("  per-partition staleness (max p95 versions "
                         "over hosting replicas):")
            for part, names in sorted(partitions.items()):
                peaks = [
                    by_replica[name][0].quantile(0.95)
                    for name in names
                    if name in by_replica and by_replica[name][0]
                ]
                if peaks:
                    lines.append(
                        f"    partition {part:<3d} "
                        f"{max(peaks):6.1f} v  "
                        f"(hosts: {', '.join(sorted(names))})"
                    )
    return lines
