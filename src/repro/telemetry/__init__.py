"""Unified telemetry: metrics registry, trace spans, run timelines.

One layer, three pillars: the analytical model has no runtime to
observe, but the simulator and the live cluster thread one
:class:`Telemetry` object through their certifier, replicas and load
balancer so both emit the **same metric-name schema**
(:data:`~repro.telemetry.schema.SHARED_SCHEMA`) — certifier queue
depth, per-replica replication lag (versions and seconds), channel
backlog, routing counts, writeset apply latency.  Per-transaction trace
spans (route → execute → certify → propagate → apply) are sampled
deterministically and export as JSONL or Chrome traces; run-level
timeline snapshots feed the ``repro metrics`` ASCII dashboard.

Telemetry is opt-in per run and strictly zero-cost when off: the
``telemetry`` attribute on instrumented components defaults to ``None``
and every call site is guarded, so disabled runs are byte-identical to
a build without this package.
"""

from . import schema
from .causal import (
    CausalEdge,
    CausalTrace,
    CriticalPathReport,
    ReplicationHop,
    causal_chrome_trace,
    causal_traces,
    critical_path,
    edge_schema,
    render_critical_path,
    staleness_summary,
    write_causal_chrome_trace,
)
from .core import (
    Telemetry,
    TelemetryConfig,
    TelemetryResult,
    active_config,
)
from .events import TelemetryEvent, render_events
from .export import (
    chrome_trace,
    load_spans_jsonl,
    prometheus_text,
    span_to_dict,
    validate_span_dict,
    write_chrome_trace,
    write_spans_jsonl,
)
from .perf import (
    CapacitySnapshot,
    ComponentSignal,
    DriftPoint,
    EffectiveCapacity,
    Ewma,
    GrayEvent,
    PerfReport,
    WindowedQuantile,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
)
from .spans import Span, Tracer
from .timeline import TimelineSnapshot, render_dashboard, render_timeline

__all__ = [
    "CapacitySnapshot",
    "CausalEdge",
    "CausalTrace",
    "ComponentSignal",
    "Counter",
    "CriticalPathReport",
    "DriftPoint",
    "EffectiveCapacity",
    "Ewma",
    "Gauge",
    "GrayEvent",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "PerfReport",
    "ReplicationHop",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryEvent",
    "TelemetryResult",
    "TimelineSnapshot",
    "Tracer",
    "WindowedQuantile",
    "active_config",
    "causal_chrome_trace",
    "causal_traces",
    "chrome_trace",
    "critical_path",
    "edge_schema",
    "load_spans_jsonl",
    "prometheus_text",
    "render_critical_path",
    "render_dashboard",
    "render_events",
    "render_timeline",
    "schema",
    "span_to_dict",
    "staleness_summary",
    "validate_span_dict",
    "write_causal_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
]
