"""The shared metric-name schema every pillar emits.

The paper's analysis decomposes replicated-SI performance into a small
set of component signals — certification conflicts (§5), propagation and
application of writesets (§3.2), snapshot staleness under GSI (§2) — and
the whole point of the telemetry layer is that the **simulator and the
live cluster emit the same metric names** for those signals, so a
cross-validation run can diff component-level behaviour instead of just
end-to-end throughput.

Names follow the Prometheus conventions: ``*_total`` for counters,
``*_seconds`` for time histograms, bare nouns for gauges.  Labels are
free-form key/value pairs; the conventional ones are ``replica`` (the
subject replica's name), ``kind`` (``read``/``update``) and ``action``
(controller decisions).

``SHARED_SCHEMA`` is the parity contract: both execution pillars must
emit every name in it.  ``LIVE_ONLY`` documents the metrics that only
exist where a real data store exists (the simulator models timing, not
data, so it has no per-replica version store).
"""

from __future__ import annotations

# ---------------------------------------------------------------------
# Transaction flow
# ---------------------------------------------------------------------

#: Committed transactions, labelled ``kind=read|update``.
TXN_COMMITS = "txn_commits_total"
#: Load-balancer routing decisions, labelled ``replica`` and ``kind``.
LB_ROUTED = "lb_routed_total"

# ---------------------------------------------------------------------
# Certifier (the shared commit path of §4 / §5)
# ---------------------------------------------------------------------

#: Certification requests processed (commits + conflicts).
CERTIFICATIONS = "certifier_certifications_total"
#: Certification requests that committed.
CERTIFIER_COMMITS = "certifier_commits_total"
#: Certification requests aborted on a write-write conflict.
CERTIFIER_CONFLICTS = "certifier_conflicts_total"
#: In-flight certification requests: from the moment a writeset is
#: submitted until its certification round-trip (the configured
#: ``certifier_delay``) completes.  Measured at the certifier service
#: boundary in both pillars so the values are comparable.
CERTIFIER_QUEUE_DEPTH = "certifier_queue_depth"
#: Writesets the certifier retains for conflict checks against old
#: snapshots (its version-history window).
CERTIFIER_HISTORY = "certifier_history_size"

# ---------------------------------------------------------------------
# Replication (per-replica, labelled ``replica``)
# ---------------------------------------------------------------------

#: How many certified versions the replica has not applied yet.
REPLICATION_LAG_VERSIONS = "replication_lag_versions"
#: Age of the oldest unapplied certified version (virtual seconds in
#: both pillars — the live cluster's clock also runs in virtual time).
REPLICATION_LAG_SECONDS = "replication_lag_seconds"
#: Writesets enqueued at the replica but not yet folded into its
#: contiguous ``applied_version`` watermark.
CHANNEL_BACKLOG = "channel_backlog"
#: Enqueue-to-applied latency of one writeset at one replica.
APPLY_LATENCY = "writeset_apply_latency_seconds"
#: Retained row versions in the replica's multi-version store.  Live
#: pillar only: the simulator models timing, not data, so it has no
#: version store to measure (see ``LIVE_ONLY``).
VERSION_STORE = "version_store_versions"

# ---------------------------------------------------------------------
# Snapshot staleness (GSI, §2) — sampled when a transaction begins
# ---------------------------------------------------------------------

#: How many certified versions the snapshot a transaction received was
#: behind the certifier at begin time (histogram, labelled ``replica``).
SNAPSHOT_STALENESS_VERSIONS = "snapshot_staleness_versions"
#: Age (virtual seconds) of the oldest commit the snapshot missed
#: (histogram, labelled ``replica``).
SNAPSHOT_STALENESS_SECONDS = "snapshot_staleness_seconds"

# ---------------------------------------------------------------------
# Control plane and operations
# ---------------------------------------------------------------------

#: Autoscale controller decisions, labelled ``action=scale_up|
#: scale_down|hold``.
CONTROLLER_DECISIONS = "controller_decisions_total"
#: The controller's most recent membership target.
CONTROLLER_TARGET = "controller_target_replicas"
#: Operations events (crash/detect/replace/...), labelled ``kind``.
OPS_EVENTS = "ops_events_total"
#: Error-budget burn rate per monitoring window, labelled ``window``
#: (seconds) and ``signal`` (``latency``/``abort``); 1.0 means the run
#: consumes its budget exactly as fast as the SLO allows.
SLO_BURN_RATE = "slo_burn_rate"
#: Invariant-audit outcome gauges, labelled ``invariant``; non-zero
#: violations mean the run broke a replication safety property.
AUDIT_VIOLATIONS = "audit_violations"
AUDIT_CHECKS = "audit_checks"
#: Spans the bounded trace ring discarded after filling up.  Surfaced in
#: every export so external scrapers see data loss, not silence.
SPANS_DROPPED = "telemetry_spans_dropped_total"

# ---------------------------------------------------------------------
# Performance observability (online capacity estimation, PR 10)
# ---------------------------------------------------------------------

#: The online estimator's effective-capacity multiplier for one replica
#: (gauge, labelled ``replica``); 1.0 means the machine delivers its
#: declared speed, 0.5 means a gray failure halved it.
EFFECTIVE_CAPACITY = "effective_capacity_ratio"
#: Relative residual between the analytic model's predicted throughput
#: and the observed per-tick throughput (gauge; 0 means on-model).
MODEL_RESIDUAL = "model_throughput_residual"
#: Control ticks on which the drift monitor declared the analytic model
#: out of its crossval envelope.
MODEL_DRIFT = "model_drift_verdicts_total"
#: Gray-failure detections (estimated capacity fell below the detection
#: threshold), labelled ``replica``.
GRAY_DETECTIONS = "gray_failure_detections_total"

# ---------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------

#: Metric names both execution pillars must emit on a replicated run —
#: the schema-parity set the crossval test asserts on.
SHARED_SCHEMA = frozenset({
    TXN_COMMITS,
    LB_ROUTED,
    CERTIFICATIONS,
    CERTIFIER_COMMITS,
    CERTIFIER_CONFLICTS,
    CERTIFIER_QUEUE_DEPTH,
    CERTIFIER_HISTORY,
    REPLICATION_LAG_VERSIONS,
    REPLICATION_LAG_SECONDS,
    CHANNEL_BACKLOG,
    APPLY_LATENCY,
    SNAPSHOT_STALENESS_VERSIONS,
    SNAPSHOT_STALENESS_SECONDS,
})

#: Metrics only the live pillar can emit (it alone holds real data).
LIVE_ONLY = frozenset({VERSION_STORE})

#: The transaction lifecycle span names, in paper order: the load
#: balancer routes (§3.1), the replica executes, the certifier decides
#: (§4), the writeset propagates to the fleet (§3.2) and each replica
#: applies it.
SPAN_ROUTE = "route"
SPAN_EXECUTE = "execute"
SPAN_CERTIFY = "certify"
SPAN_PROPAGATE = "propagate"
SPAN_APPLY = "apply"
SPAN_NAMES = (SPAN_ROUTE, SPAN_EXECUTE, SPAN_CERTIFY, SPAN_PROPAGATE,
              SPAN_APPLY)

#: Abort-reason tag value for first-committer-wins conflicts.
ABORT_WW_CONFLICT = "ww-conflict"

#: Default histogram bucket upper bounds for apply latency (seconds).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0,
)

#: Bucket upper bounds for snapshot staleness in versions behind.
STALENESS_VERSION_BUCKETS = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
)
