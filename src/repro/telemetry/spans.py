"""Per-transaction trace spans for the replicated-SI lifecycle.

A sampled transaction produces one *trace* of spans named after the
pipeline stages of §3–§4: ``route`` (load balancer), ``execute``
(replica work, one span per attempt), ``certify`` (the certification
round-trip, tagged with the outcome and the abort reason on a
first-committer-wins conflict), ``propagate`` (commit decision to
fan-out at the replicas) and ``apply`` (enqueue to applied at each
replica, recorded by the applier via the version → trace map).

Sampling is **deterministic and count-based** (an error-diffusion
accumulator), not random: the simulator's results must be bit-for-bit
reproducible for a given seed, so tracing may not consume workload
randomness or branch on wall-clock time.  Every pillar therefore traces
the same transactions for the same sample rate.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

#: How many recent commit versions keep their trace association for the
#: appliers to look up (bounds memory on long runs).
_VERSION_MAP_LIMIT = 8192


@dataclass(frozen=True)
class Span:
    """One completed stage of one traced transaction."""

    trace_id: int
    span_id: int
    name: str
    start: float
    end: float
    subject: str = ""
    parent_id: int = 0
    tags: Tuple[Tuple[str, str], ...] = ()

    @property
    def duration(self) -> float:
        """Span length in (virtual) seconds."""
        return self.end - self.start

    def tag(self, key: str, default: str = "") -> str:
        """Look up one tag value."""
        for k, v in self.tags:
            if k == key:
                return v
        return default


@dataclass
class Tracer:
    """Collects spans for a deterministic sample of transactions."""

    sample_rate: float = 0.0
    max_spans: int = 50_000
    #: Ring-buffer (streaming) mode: once :attr:`max_spans` is reached
    #: the *oldest* span is evicted for each new one, so a long run
    #: keeps its most recent window instead of its first.  The default
    #: (``False``) keeps the original drop-new behaviour.  Either way
    #: :attr:`dropped` counts every span lost.
    ring: bool = False
    spans: List[Span] = field(default_factory=list)
    #: Spans discarded after :attr:`max_spans` filled up.
    dropped: int = 0

    def __post_init__(self) -> None:
        self.sample_rate = min(1.0, max(0.0, float(self.sample_rate)))
        if self.ring:
            # A deque gives O(1) eviction from the front; every consumer
            # only iterates or takes len(), so the substitution is safe.
            self.spans = deque(self.spans)
        self._lock = threading.Lock()
        self._accumulator = 0.0
        self._next_trace = 0
        self._next_span = 0
        self._version_traces: Dict[int, int] = {}
        self._version_order: Deque[int] = deque()

    # ------------------------------------------------------------------
    # Trace lifecycle
    # ------------------------------------------------------------------

    def start_trace(self) -> Optional[int]:
        """Begin a trace for the next transaction if it is sampled.

        Returns a trace id, or ``None`` when this transaction falls
        outside the sample (the caller then skips all span recording).
        """
        if self.sample_rate <= 0.0:
            return None
        with self._lock:
            self._accumulator += self.sample_rate
            if self._accumulator < 1.0:
                return None
            self._accumulator -= 1.0
            self._next_trace += 1
            return self._next_trace

    def add_span(
        self,
        trace_id: int,
        name: str,
        start: float,
        end: float,
        subject: str = "",
        parent_id: int = 0,
        **tags,
    ) -> int:
        """Record one completed span; returns its span id."""
        with self._lock:
            self._next_span += 1
            span_id = self._next_span
            if len(self.spans) >= self.max_spans and not self.ring:
                self.dropped += 1
            else:
                if len(self.spans) >= self.max_spans:
                    self.spans.popleft()
                    self.dropped += 1
                self.spans.append(Span(
                    trace_id=trace_id,
                    span_id=span_id,
                    name=name,
                    start=start,
                    end=end,
                    subject=subject,
                    parent_id=parent_id,
                    tags=tuple(sorted(
                        (k, str(v)) for k, v in tags.items()
                    )),
                ))
            return span_id

    # ------------------------------------------------------------------
    # Version → trace correlation (for the asynchronous appliers)
    # ------------------------------------------------------------------

    def note_version(self, commit_version: int, trace_id: int) -> None:
        """Associate a committed version with its trace, so the replica
        appliers — which only see the writeset — can tag their ``apply``
        spans onto the right trace."""
        with self._lock:
            self._version_traces[commit_version] = trace_id
            self._version_order.append(commit_version)
            while len(self._version_order) > _VERSION_MAP_LIMIT:
                old = self._version_order.popleft()
                self._version_traces.pop(old, None)

    def trace_for(self, commit_version: int) -> Optional[int]:
        """The trace id that committed *commit_version* (if sampled)."""
        with self._lock:
            return self._version_traces.get(commit_version)
