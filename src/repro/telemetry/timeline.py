"""Run-level timeline snapshots and the ASCII dashboard.

A telemetry-enabled run samples the fleet on a configurable interval
(a DES process in the simulator, a daemon thread in the live cluster —
both in virtual time) and appends a :class:`TimelineSnapshot` of the
headline series.  ``repro metrics`` renders the result as an ASCII
dashboard; :mod:`repro.telemetry.export` turns the same data into JSON
or Prometheus text exposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .registry import COUNTER, GAUGE, HISTOGRAM

#: Timeline series sampled every interval (cumulative commits become a
#: per-interval rate in the renderer).
SERIES_QUEUE_DEPTH = "certifier_queue_depth"
SERIES_LAG_VERSIONS = "replication_lag_versions(max)"
SERIES_LAG_SECONDS = "replication_lag_seconds(max)"
SERIES_BACKLOG = "channel_backlog(max)"
SERIES_COMMITS = "commits_total"


@dataclass(frozen=True)
class TimelineSnapshot:
    """Headline gauge values at one sampling instant."""

    time: float
    values: Tuple[Tuple[str, float], ...]

    def value(self, series: str, default: float = 0.0) -> float:
        """Look up one series value."""
        for name, value in self.values:
            if name == series:
                return value
        return default


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0.0:
        return ""
    filled = int(round(width * min(1.0, value / peak)))
    return "#" * filled


def render_timeline(
    snapshots: Sequence[TimelineSnapshot],
    series: str = SERIES_LAG_VERSIONS,
    width: int = 24,
    max_rows: int = 40,
) -> List[str]:
    """Render one timeline series as ``t=..  value  bar`` rows.

    Long runs are decimated to at most *max_rows* evenly spaced
    snapshots so the dashboard stays terminal-sized.
    """
    if not snapshots:
        return ["  (no timeline snapshots)"]
    rows = list(snapshots)
    if len(rows) > max_rows:
        step = len(rows) / max_rows
        rows = [rows[int(i * step)] for i in range(max_rows)]
    peak = max(snap.value(series) for snap in rows)
    lines = [f"  {series} (peak {peak:g}):"]
    for snap in rows:
        value = snap.value(series)
        lines.append(
            f"    t={snap.time:8.2f}s  {value:10.3f}  "
            f"{_bar(value, peak, width)}"
        )
    return lines


def render_dashboard(result, width: int = 24) -> str:
    """Render a :class:`~repro.telemetry.TelemetryResult` as text.

    Sections: counters, gauges (last/max), histogram summaries
    (p50/p95/max-bucket), one timeline series, and the event timeline.
    Accepts any object with ``pillar``, ``samples``, ``timeline``,
    ``events`` and ``spans`` attributes.
    """
    from .events import render_events

    lines = [f"telemetry dashboard — {result.pillar} pillar"]
    counters = [s for s in result.samples if s.kind == COUNTER]
    gauges = [s for s in result.samples if s.kind == GAUGE]
    histograms = [s for s in result.samples if s.kind == HISTOGRAM]
    if counters:
        lines.append("  counters:")
        for sample in counters:
            lines.append(
                f"    {sample.name + sample.label_text():<52s} "
                f"{sample.value:12.0f}"
            )
    if gauges:
        lines.append("  gauges (last / max):")
        for sample in gauges:
            lines.append(
                f"    {sample.name + sample.label_text():<52s} "
                f"{sample.value:10.3f} / {sample.max_value:10.3f}"
            )
    if histograms:
        lines.append("  histograms (p50 / p95 / mean, seconds):")
        for sample in histograms:
            lines.append(
                f"    {sample.name + sample.label_text():<52s} "
                f"{sample.quantile(0.50):8.4f} / "
                f"{sample.quantile(0.95):8.4f} / {sample.mean:8.4f} "
                f"(n={sample.count})"
            )
    from .causal import staleness_summary

    lines.extend(staleness_summary(result))
    if result.timeline:
        lines.extend(render_timeline(result.timeline, width=width))
    if result.events:
        lines.append("  events:")
        lines.extend(render_events(result.events))
    if result.spans:
        lines.append(
            f"  spans: {len(result.spans)} recorded "
            f"({len({s.trace_id for s in result.spans})} traces)"
        )
    dropped = getattr(result, "spans_dropped", 0)
    if dropped:
        config = getattr(result, "config", None)
        max_spans = getattr(config, "max_spans", "?")
        ring = getattr(config, "span_ring", False)
        mode = "oldest evicted" if ring else "newest discarded"
        lines.append(
            f"  !! SPANS DROPPED: {dropped} ({mode}; max_spans="
            f"{max_spans} — raise it or lower the sample rate)"
        )
    audit = getattr(result, "audit", None)
    if audit is not None:
        lines.append(
            f"  audit: {audit.total_checks} checks "
            f"({audit.commits_seen} commits, "
            f"{audit.deliveries_seen} deliveries, "
            f"{audit.applies_seen} applies)"
        )
        if audit.ok:
            lines.append("  audit: PASS — zero invariant violations")
        else:
            lines.append(
                f"  !! AUDIT VIOLATIONS: {audit.total_violations}"
            )
            for violation in audit.violations[:20]:
                lines.append("    " + violation.to_text())
    return "\n".join(lines)
