"""Telemetry exporters: span JSONL, Chrome trace, Prometheus text.

The JSONL form is the interchange format (one span object per line,
validated by :func:`validate_span_dict` — the CI telemetry-smoke job
runs ``python -m repro.telemetry.export validate <file>``).  The Chrome
trace converter emits the ``chrome://tracing`` / Perfetto JSON object
format (``ph: "X"`` complete events in microseconds, with process and
thread name metadata mapping pillars and replicas).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from .registry import COUNTER, GAUGE, MetricSample
from .spans import Span

#: Required span-JSONL fields and their types (the span schema).
SPAN_SCHEMA = {
    "trace_id": int,
    "span_id": int,
    "parent_id": int,
    "name": str,
    "start": (int, float),
    "end": (int, float),
    "subject": str,
    "pillar": str,
    "tags": dict,
}


def span_to_dict(span: Span, pillar: str = "") -> Dict[str, object]:
    """Flatten one span into its JSONL object form."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "subject": span.subject,
        "pillar": pillar,
        "tags": dict(span.tags),
    }


def validate_span_dict(obj: object) -> List[str]:
    """Return the schema violations of one decoded JSONL line."""
    if not isinstance(obj, dict):
        return [f"span must be an object, got {type(obj).__name__}"]
    errors = []
    for field, types in SPAN_SCHEMA.items():
        if field not in obj:
            errors.append(f"missing field {field!r}")
        elif not isinstance(obj[field], types):
            # bool is an int subclass; ids must be real integers.
            errors.append(
                f"field {field!r} has type {type(obj[field]).__name__}"
            )
    if not errors:
        if isinstance(obj.get("start"), bool) or isinstance(
            obj.get("end"), bool
        ):
            errors.append("start/end must be numbers")
        elif obj["end"] < obj["start"]:
            errors.append("span ends before it starts")
        if any(
            not isinstance(k, str) or not isinstance(v, str)
            for k, v in obj["tags"].items()
        ):
            errors.append("tags must map strings to strings")
    return errors


def write_spans_jsonl(path: str, spans: Iterable[Span],
                      pillar: str = "") -> int:
    """Write spans as JSONL; returns the number written.

    *spans* may also yield ``(pillar, span)`` pairs for multi-pillar
    files (``repro metrics --pillar both``)."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for item in spans:
            if isinstance(item, tuple):
                span_pillar, span = item
            else:
                span_pillar, span = pillar, item
            handle.write(json.dumps(span_to_dict(span, span_pillar),
                                    sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_spans_jsonl(path: str) -> List[Dict[str, object]]:
    """Load and validate a span JSONL file (raises on violations)."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSON: {exc}")
            errors = validate_span_dict(obj)
            if errors:
                raise ValueError(
                    f"{path}:{lineno}: " + "; ".join(errors)
                )
            spans.append(obj)
    return spans


def chrome_trace(span_dicts: Sequence[Dict[str, object]]) -> Dict:
    """Convert span objects to the Chrome trace-event JSON format.

    Pillars become processes and subjects become threads (with ``M``
    metadata naming events), spans become ``ph: "X"`` complete events
    with microsecond timestamps — loadable in ``chrome://tracing`` and
    Perfetto.
    """
    events: List[Dict[str, object]] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}
    for span in span_dicts:
        pillar = str(span.get("pillar") or "run")
        subject = str(span.get("subject") or "txn")
        if pillar not in pids:
            pids[pillar] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pids[pillar],
                "tid": 0, "args": {"name": pillar},
            })
        pid = pids[pillar]
        if (pid, subject) not in tids:
            tids[(pid, subject)] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tids[(pid, subject)], "args": {"name": subject},
            })
        args = dict(span["tags"])
        args["trace_id"] = span["trace_id"]
        args["span_id"] = span["span_id"]
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": pillar,
            "pid": pid,
            "tid": tids[(pid, subject)],
            "ts": float(span["start"]) * 1e6,
            "dur": (float(span["end"]) - float(span["start"])) * 1e6,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str,
                       span_dicts: Sequence[Dict[str, object]]) -> None:
    """Write the Chrome-trace conversion of *span_dicts* to *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(span_dicts), handle)


def prometheus_text(samples: Sequence[MetricSample]) -> str:
    """Render metric samples in the Prometheus text exposition format.

    Histograms are rendered with cumulative ``_bucket`` series (upper
    bounds inclusive, closing ``+Inf``), ``_sum`` and ``_count``; gauge
    high-water marks get a ``_max`` companion series.
    """
    lines: List[str] = []
    seen_types = set()
    for sample in samples:
        if sample.name not in seen_types:
            seen_types.add(sample.name)
            kind = sample.kind if sample.kind != COUNTER else "counter"
            lines.append(f"# TYPE {sample.name} {kind}")
        labels = sample.label_text()
        if sample.kind in (COUNTER, GAUGE):
            lines.append(f"{sample.name}{labels} {sample.value:g}")
            if sample.kind == GAUGE and sample.max_value:
                lines.append(
                    f"{sample.name}_max{labels} {sample.max_value:g}"
                )
        else:
            cumulative = 0
            for bound, count in zip(sample.bounds, sample.buckets):
                cumulative += count
                le = dict(sample.labels)
                le["le"] = f"{bound:g}"
                inner = ",".join(
                    f'{k}="{v}"' for k, v in sorted(le.items())
                )
                lines.append(
                    f"{sample.name}_bucket{{{inner}}} {cumulative}"
                )
            le = dict(sample.labels)
            le["le"] = "+Inf"
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(le.items()))
            lines.append(
                f"{sample.name}_bucket{{{inner}}} {sample.count}"
            )
            lines.append(f"{sample.name}_sum{labels} {sample.sum:g}")
            lines.append(f"{sample.name}_count{labels} {sample.count}")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    """CLI: ``validate <spans.jsonl>`` / ``chrome <in.jsonl> <out.json>``.

    The CI telemetry-smoke job uses ``validate`` to assert an exported
    span file conforms to :data:`SPAN_SCHEMA`.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.export",
        description="Validate or convert exported span JSONL files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser("validate", help="validate a span JSONL file")
    validate.add_argument("path")
    chrome = sub.add_parser("chrome", help="convert JSONL to Chrome trace")
    chrome.add_argument("path")
    chrome.add_argument("output")
    args = parser.parse_args(argv)
    try:
        spans = load_spans_jsonl(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    if args.command == "validate":
        print(f"{args.path}: {len(spans)} spans, schema OK")
        return 0
    write_chrome_trace(args.output, spans)
    print(f"{args.output}: {len(spans)} spans converted")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
