"""Result types produced by the analytical models and the simulator.

Both sides of the validation (prediction and measurement) report the same
:class:`OperatingPoint` shape so that experiments can compare them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .errors import ConfigurationError


@dataclass(frozen=True)
class OperatingPoint:
    """Steady-state performance of one configuration.

    ``throughput`` counts *committed* transactions per second for the whole
    system; ``response_time`` is the mean end-to-end latency (in seconds) a
    client observes, excluding think time.
    """

    throughput: float
    response_time: float
    #: Abort probability of update transactions (AN or A'N); 0 when the
    #: workload has no updates.
    abort_rate: float = 0.0
    #: Per-resource utilization of the busiest replica, keyed by resource
    #: name ("cpu", "disk").  Optional diagnostic output.
    utilization: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.throughput < 0.0:
            raise ConfigurationError("throughput must be non-negative")
        if self.response_time < 0.0:
            raise ConfigurationError("response time must be non-negative")
        if not 0.0 <= self.abort_rate <= 1.0:
            raise ConfigurationError("abort rate must be in [0, 1]")


@dataclass(frozen=True)
class ReplicaBreakdown:
    """Diagnostic detail for one replica role in a prediction."""

    role: str
    throughput: float
    clients: float
    utilization: Dict[str, float] = field(default_factory=dict)
    residence_times: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Prediction:
    """Output of an analytical model for one (workload, N) configuration."""

    replicas: int
    point: OperatingPoint
    #: Conflict window CW(N) in seconds (multi-master only; 0 otherwise).
    conflict_window: float = 0.0
    #: Per-role detail: one entry for multi-master ("replica"), two for
    #: single-master ("master", "slave").
    breakdown: Sequence[ReplicaBreakdown] = ()
    #: Read-only transactions per second routed to the master (E in §3.3.3);
    #: only meaningful for single-master predictions.
    master_extra_reads: float = 0.0

    @property
    def throughput(self) -> float:
        """System throughput in committed transactions per second."""
        return self.point.throughput

    @property
    def response_time(self) -> float:
        """Mean response time (seconds, excluding think time)."""
        return self.point.response_time

    @property
    def abort_rate(self) -> float:
        """Predicted update-transaction abort probability."""
        return self.point.abort_rate


@dataclass(frozen=True)
class ScalabilityCurve:
    """A series of predictions or measurements across replica counts."""

    label: str
    replica_counts: Sequence[int]
    points: Sequence[OperatingPoint]

    def __post_init__(self) -> None:
        if len(self.replica_counts) != len(self.points):
            raise ConfigurationError(
                "replica_counts and points must have the same length"
            )
        if list(self.replica_counts) != sorted(set(self.replica_counts)):
            raise ConfigurationError(
                "replica_counts must be strictly increasing"
            )

    @property
    def throughputs(self) -> List[float]:
        """Throughput values in replica-count order."""
        return [p.throughput for p in self.points]

    @property
    def response_times(self) -> List[float]:
        """Response-time values in replica-count order."""
        return [p.response_time for p in self.points]

    @property
    def abort_rates(self) -> List[float]:
        """Abort-rate values in replica-count order."""
        return [p.abort_rate for p in self.points]

    def point_at(self, replicas: int) -> OperatingPoint:
        """Return the operating point measured/predicted at *replicas*."""
        try:
            index = list(self.replica_counts).index(replicas)
        except ValueError:
            raise ConfigurationError(
                f"curve {self.label!r} has no point at N={replicas}"
            ) from None
        return self.points[index]

    def speedup(self) -> List[float]:
        """Throughput of each point relative to the first point."""
        if not self.points:
            return []
        base = self.points[0].throughput
        if base <= 0.0:
            raise ConfigurationError("cannot compute speedup from zero throughput")
        return [p.throughput / base for p in self.points]

    def peak(self) -> int:
        """Replica count at which throughput is maximal."""
        if not self.points:
            raise ConfigurationError("curve is empty")
        best = max(range(len(self.points)), key=lambda i: self.points[i].throughput)
        return list(self.replica_counts)[best]


def relative_error(predicted: float, measured: float) -> float:
    """|predicted - measured| / measured, the paper's error metric (§6.2)."""
    if measured == 0.0:
        raise ConfigurationError("measured value is zero; relative error undefined")
    return abs(predicted - measured) / abs(measured)


@dataclass(frozen=True)
class ValidationPoint:
    """One (N, predicted, measured) comparison row."""

    replicas: int
    predicted: OperatingPoint
    measured: OperatingPoint

    @property
    def throughput_error(self) -> float:
        """Relative throughput error against the measurement."""
        return relative_error(self.predicted.throughput, self.measured.throughput)

    @property
    def response_time_error(self) -> float:
        """Relative response-time error against the measurement."""
        return relative_error(
            self.predicted.response_time, self.measured.response_time
        )


@dataclass(frozen=True)
class ValidationSeries:
    """All comparison rows for one (workload mix, system design) figure."""

    label: str
    rows: Sequence[ValidationPoint]

    def max_throughput_error(self) -> float:
        """Largest relative throughput error across the series."""
        if not self.rows:
            raise ConfigurationError("validation series is empty")
        return max(row.throughput_error for row in self.rows)

    def mean_throughput_error(self) -> float:
        """Mean relative throughput error across the series."""
        if not self.rows:
            raise ConfigurationError("validation series is empty")
        return sum(row.throughput_error for row in self.rows) / len(self.rows)

    def max_response_time_error(self) -> float:
        """Largest relative response-time error across the series."""
        if not self.rows:
            raise ConfigurationError("validation series is empty")
        return max(row.response_time_error for row in self.rows)

    def predicted_curve(self) -> ScalabilityCurve:
        """The predicted side as a :class:`ScalabilityCurve`."""
        return ScalabilityCurve(
            label=f"{self.label} (predicted)",
            replica_counts=[r.replicas for r in self.rows],
            points=[r.predicted for r in self.rows],
        )

    def measured_curve(self) -> ScalabilityCurve:
        """The measured side as a :class:`ScalabilityCurve`."""
        return ScalabilityCurve(
            label=f"{self.label} (measured)",
            replica_counts=[r.replicas for r in self.rows],
            points=[r.measured for r in self.rows],
        )
