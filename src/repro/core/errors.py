"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
one base class.  Subclasses distinguish configuration problems (bad inputs)
from solver problems (a model that failed to converge) and from simulator
problems (an inconsistent discrete-event state, which indicates a bug).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An input parameter is missing, out of range, or inconsistent."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver (MVA fixed point, balancing loop) did not converge."""

    def __init__(self, message: str, iterations: int = 0) -> None:
        super().__init__(message)
        self.iterations = iterations


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class RetryLimitExceeded(SimulationError):
    """A transaction aborted more times in a row than the configured limit.

    Tripping :attr:`~repro.core.params.ReplicationConfig.max_retries`
    indicates a mis-configured conflict model (or a genuinely livelocked
    workload) rather than normal contention.  Carries the system design,
    the transaction class, and the retry count so callers can report
    exactly which part of the configuration is at fault.
    """

    def __init__(self, design: str, transaction_class: str, retries: int):
        super().__init__(
            f"{transaction_class} transaction on the {design} system aborted "
            f"{retries} times in a row (max_retries={retries}); the conflict "
            f"model is likely mis-configured"
        )
        self.design = design
        self.transaction_class = transaction_class
        self.retries = retries


class TransactionAborted(ReproError):
    """A snapshot-isolation transaction was aborted by conflict detection.

    Raised by :mod:`repro.sidb` when a commit fails certification under the
    first-committer-wins rule.  Carries the conflicting keys so callers (and
    tests) can inspect why the abort happened.
    """

    def __init__(self, txn_id: int, conflicting_keys=()):
        keys = sorted(conflicting_keys)
        preview = ", ".join(repr(k) for k in keys[:5])
        if len(keys) > 5:
            preview += ", ..."
        super().__init__(
            f"transaction {txn_id} aborted: write-write conflict on [{preview}]"
        )
        self.txn_id = txn_id
        self.conflicting_keys = frozenset(keys)


class ProfilingError(ReproError, RuntimeError):
    """A profiling run produced measurements that cannot be used."""


class EngineError(ReproError, RuntimeError):
    """A sweep point failed inside the scenario engine.

    Raised by :func:`repro.engine.runner.execute_points` when a point
    raises inside a pool worker; carries the scenario-side description of
    the failed point so parallel failures are as debuggable as serial
    ones (the original traceback text is embedded in the message).
    """

    def __init__(self, message: str, point=None):
        super().__init__(message)
        self.point = point
