"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
one base class.  Subclasses distinguish configuration problems (bad inputs)
from solver problems (a model that failed to converge) and from simulator
problems (an inconsistent discrete-event state, which indicates a bug).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An input parameter is missing, out of range, or inconsistent."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver (MVA fixed point, balancing loop) did not converge."""

    def __init__(self, message: str, iterations: int = 0) -> None:
        super().__init__(message)
        self.iterations = iterations


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class TransactionAborted(ReproError):
    """A snapshot-isolation transaction was aborted by conflict detection.

    Raised by :mod:`repro.sidb` when a commit fails certification under the
    first-committer-wins rule.  Carries the conflicting keys so callers (and
    tests) can inspect why the abort happened.
    """

    def __init__(self, txn_id: int, conflicting_keys=()):
        keys = sorted(conflicting_keys)
        preview = ", ".join(repr(k) for k in keys[:5])
        if len(keys) > 5:
            preview += ", ..."
        super().__init__(
            f"transaction {txn_id} aborted: write-write conflict on [{preview}]"
        )
        self.txn_id = txn_id
        self.conflicting_keys = frozenset(keys)


class ProfilingError(ReproError, RuntimeError):
    """A profiling run produced measurements that cannot be used."""
