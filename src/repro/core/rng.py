"""Deterministic random-number utilities for the simulator and workloads.

Every stochastic component takes an explicit seed so experiments are
reproducible run-to-run.  ``spawn`` derives independent child streams from a
parent seed, so adding a new random consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Sequence

import numpy as np

#: Default seed used by experiments when none is given.
DEFAULT_SEED = 20090401  # EuroSys 2009, April 1 — the paper's presentation day.


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed."""
    return np.random.default_rng(seed)


def _stable_hash(value: object) -> int:
    """Hash *value* identically in every process.

    Python's built-in ``hash`` is salted per process (PYTHONHASHSEED), which
    would make derived streams — and therefore whole experiments —
    unreproducible across runs.
    """
    digest = hashlib.sha256(str(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def spawn(seed: int, *path: object) -> np.random.Generator:
    """Derive an independent generator for a named component.

    ``spawn(seed, "replica", 3, "cpu")`` always yields the same stream for
    the same (seed, path) pair — in every process — and streams with
    different paths are statistically independent.
    """
    entropy = [seed] + [_stable_hash(p) for p in path]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def exponential(rng: np.random.Generator, mean: float) -> float:
    """Draw one exponential sample with the given *mean* (0 mean -> 0)."""
    if mean <= 0.0:
        return 0.0
    return float(rng.exponential(mean))


def choice_index(rng: np.random.Generator, weights: Sequence[float]) -> int:
    """Pick an index with probability proportional to *weights*."""
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weights must have a positive sum")
    u = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if u < acc:
            return i
    return len(weights) - 1


def sample_rows(
    rng: np.random.Generator, db_update_size: int, count: int
) -> frozenset:
    """Sample *count* distinct row ids uniformly from [0, db_update_size).

    Models the paper's uniform-update assumption (§3.4, assumption 4): each
    update transaction modifies U uniformly chosen rows with no hotspot.
    """
    if count > db_update_size:
        raise ValueError("cannot sample more rows than DbUpdateSize")
    if count * 4 >= db_update_size:
        # Dense case: a permutation draw is cheaper than rejection sampling.
        return frozenset(
            int(r) for r in rng.choice(db_update_size, size=count, replace=False)
        )
    rows = set()
    while len(rows) < count:
        rows.add(int(rng.integers(0, db_update_size)))
    return frozenset(rows)


def seeds(seed: int, count: int) -> Iterator[int]:
    """Yield *count* distinct derived seeds from a parent seed."""
    ss = np.random.SeedSequence(seed)
    for child in ss.spawn(count):
        yield int(child.generate_state(1)[0])
