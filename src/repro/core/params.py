"""Parameter types shared by the analytical models, profiler, and simulator.

These dataclasses mirror the symbols of Table 1 in the paper:

========================  =====================================================
Paper symbol              Field here
========================  =====================================================
``Pr`` / ``Pw``           :attr:`WorkloadMix.read_fraction` / ``write_fraction``
``rc`` / ``wc`` / ``ws``  :class:`ServiceDemands` (per-resource, in seconds)
``A1``                    :attr:`StandaloneProfile.abort_rate`
``L(1)``                  :attr:`StandaloneProfile.update_response_time`
``N``                     :attr:`ReplicationConfig.replicas`
``C``                     :attr:`ReplicationConfig.clients_per_replica`
``Z``                     :attr:`ReplicationConfig.think_time`
``U``                     :attr:`ConflictProfile.updates_per_transaction`
``DbUpdateSize``          :attr:`ConflictProfile.db_update_size`
========================  =====================================================

All times are in **seconds** (see :mod:`repro.core.units`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .errors import ConfigurationError

#: Resource names used throughout the library.  The paper models the CPU and
#: the disk of each replica as the two queueing resources.
CPU = "cpu"
DISK = "disk"
RESOURCES: Tuple[str, str] = (CPU, DISK)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class ResourceDemand:
    """Service demand of one transaction class at the CPU and disk (seconds).

    A demand of zero is allowed (e.g. RUBiS browsing has no update class).
    """

    cpu: float = 0.0
    disk: float = 0.0

    def __post_init__(self) -> None:
        _require(self.cpu >= 0.0, f"cpu demand must be >= 0, got {self.cpu}")
        _require(self.disk >= 0.0, f"disk demand must be >= 0, got {self.disk}")

    @property
    def total(self) -> float:
        """Sum of demands across resources (a lower bound on response time)."""
        return self.cpu + self.disk

    def get(self, resource: str) -> float:
        """Return the demand at *resource* (``"cpu"`` or ``"disk"``)."""
        if resource == CPU:
            return self.cpu
        if resource == DISK:
            return self.disk
        raise ConfigurationError(f"unknown resource {resource!r}")

    def scaled(self, factor: float) -> "ResourceDemand":
        """Return a copy with both demands multiplied by *factor*."""
        _require(factor >= 0.0, f"scale factor must be >= 0, got {factor}")
        return ResourceDemand(cpu=self.cpu * factor, disk=self.disk * factor)

    def plus(self, other: "ResourceDemand") -> "ResourceDemand":
        """Return the element-wise sum of two demands."""
        return ResourceDemand(cpu=self.cpu + other.cpu, disk=self.disk + other.disk)

    def as_dict(self) -> Dict[str, float]:
        """Return ``{"cpu": ..., "disk": ...}``."""
        return {CPU: self.cpu, DISK: self.disk}


@dataclass(frozen=True)
class ServiceDemands:
    """Per-class service demands: read-only (rc), update (wc), writeset (ws)."""

    read: ResourceDemand = field(default_factory=ResourceDemand)
    write: ResourceDemand = field(default_factory=ResourceDemand)
    writeset: ResourceDemand = field(default_factory=ResourceDemand)

    def get(self, klass: str) -> ResourceDemand:
        """Return demands for a class name: ``read``, ``write``, ``writeset``."""
        try:
            return getattr(self, klass)
        except AttributeError:
            raise ConfigurationError(f"unknown transaction class {klass!r}") from None

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Nested dict form, convenient for reports and JSON output."""
        return {
            "read": self.read.as_dict(),
            "write": self.write.as_dict(),
            "writeset": self.writeset.as_dict(),
        }


@dataclass(frozen=True)
class WorkloadMix:
    """Fractions of read-only (Pr) and update (Pw) transactions.

    The two fractions must sum to 1 (within floating-point tolerance).
    """

    read_fraction: float
    write_fraction: float

    def __post_init__(self) -> None:
        _require(
            0.0 <= self.read_fraction <= 1.0,
            f"read fraction must be in [0, 1], got {self.read_fraction}",
        )
        _require(
            0.0 <= self.write_fraction <= 1.0,
            f"write fraction must be in [0, 1], got {self.write_fraction}",
        )
        total = self.read_fraction + self.write_fraction
        _require(
            abs(total - 1.0) < 1e-9,
            f"Pr + Pw must equal 1, got {self.read_fraction} + "
            f"{self.write_fraction} = {total}",
        )

    @classmethod
    def from_write_fraction(cls, write_fraction: float) -> "WorkloadMix":
        """Build a mix from Pw alone (Pr = 1 - Pw)."""
        return cls(read_fraction=1.0 - write_fraction, write_fraction=write_fraction)

    @property
    def read_only(self) -> bool:
        """True when the workload contains no update transactions."""
        return self.write_fraction == 0.0

    @property
    def write_to_read_ratio(self) -> float:
        """Pw / Pr; raises for a write-only workload."""
        _require(self.read_fraction > 0.0, "workload has no read-only transactions")
        return self.write_fraction / self.read_fraction


@dataclass(frozen=True)
class ConflictProfile:
    """Parameters of the uniform conflict model of Section 3.3.1.

    ``db_update_size`` is the number of rows that update transactions may
    modify; each update transaction modifies ``updates_per_transaction``
    uniformly chosen rows.  The probability that one update operation
    conflicts with one concurrent update operation is
    ``p = 1 / db_update_size``.
    """

    db_update_size: int
    updates_per_transaction: int

    def __post_init__(self) -> None:
        _require(self.db_update_size >= 1, "DbUpdateSize must be >= 1")
        _require(self.updates_per_transaction >= 1, "U must be >= 1")
        _require(
            self.updates_per_transaction <= self.db_update_size,
            "U cannot exceed DbUpdateSize",
        )

    @property
    def p(self) -> float:
        """Per-operation conflict probability, ``1 / DbUpdateSize``."""
        return 1.0 / self.db_update_size


@dataclass(frozen=True)
class StandaloneProfile:
    """Everything the models need, measured on a standalone database (§4).

    This is the output of :mod:`repro.profiling` and the input of
    :mod:`repro.models`.  The point of the paper is that this profile is
    sufficient to predict replicated performance.
    """

    mix: WorkloadMix
    demands: ServiceDemands
    #: A1 — probability that an update transaction aborts on the standalone
    #: database (0 for read-only workloads).
    abort_rate: float = 0.0
    #: L(1) — mean response time of update transactions on the standalone
    #: database (its conflict window), in seconds.
    update_response_time: float = 0.0
    #: W — committed update transactions per second at the profiled
    #: standalone operating point.  Optional: when present, the
    #: single-master model scales the abort exposure by the *predicted*
    #: system update throughput instead of assuming the master commits
    #: ``N*W`` (which over-states conflicts once the master saturates).
    update_rate: Optional[float] = None

    def __post_init__(self) -> None:
        _require(0.0 <= self.abort_rate < 1.0, "A1 must be in [0, 1)")
        _require(
            self.update_rate is None or self.update_rate >= 0.0,
            "update rate must be non-negative",
        )
        _require(
            self.update_response_time >= 0.0, "L(1) must be non-negative"
        )
        if self.mix.write_fraction > 0.0:
            _require(
                self.update_response_time > 0.0,
                "workloads with updates need a positive L(1)",
            )

    def replace(self, **changes) -> "StandaloneProfile":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ReplicationConfig:
    """Deployment parameters for a replicated run (§3.1, §6.1)."""

    #: N — number of replicas (for single-master: 1 master + N-1 slaves).
    replicas: int
    #: C — number of closed-loop clients per replica; the system serves
    #: ``replicas * clients_per_replica`` clients in total.
    clients_per_replica: int
    #: Z — mean client think time in seconds (the paper uses 1.0 s effective).
    think_time: float = 1.0
    #: Combined load-balancer and network delay (the paper assumes 1 ms).
    load_balancer_delay: float = 0.001
    #: Certification delay for the multi-master design (the paper uses 12 ms).
    certifier_delay: float = 0.012
    #: Multiprogramming level: the maximum number of client transactions a
    #: database executes concurrently (the application-server connection
    #: pool in the paper's testbed).  Clients beyond it queue for admission
    #: *before* receiving a snapshot, which bounds the conflict window of an
    #: overloaded server.  ``None`` disables admission control.
    max_concurrency: Optional[int] = 32
    #: Safety valve shared by the simulator and the live cluster runtime: a
    #: transaction aborting this many times in a row indicates a
    #: mis-configured conflict model rather than normal contention, and
    #: raises :class:`~repro.core.errors.RetryLimitExceeded`.
    max_retries: int = 10_000

    def __post_init__(self) -> None:
        _require(self.replicas >= 1, f"need at least 1 replica, got {self.replicas}")
        _require(
            self.clients_per_replica >= 1,
            f"need at least 1 client per replica, got {self.clients_per_replica}",
        )
        _require(self.think_time >= 0.0, "think time must be non-negative")
        _require(self.load_balancer_delay >= 0.0, "LB delay must be non-negative")
        _require(self.certifier_delay >= 0.0, "certifier delay must be non-negative")
        _require(
            self.max_concurrency is None or self.max_concurrency >= 1,
            "max_concurrency must be >= 1 (or None for no admission control)",
        )
        _require(self.max_retries >= 1, "max_retries must be >= 1")

    @property
    def total_clients(self) -> int:
        """N * C — the closed-loop population of the whole system."""
        return self.replicas * self.clients_per_replica

    def with_replicas(self, replicas: int) -> "ReplicationConfig":
        """Return a copy targeting a different replica count."""
        return dataclasses.replace(self, replicas=replicas)


def replica_sweep(config: ReplicationConfig, replica_counts: Iterable[int]):
    """Yield copies of *config* for each replica count in *replica_counts*."""
    for n in replica_counts:
        yield config.with_replicas(n)
