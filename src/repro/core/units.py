"""Time-unit helpers.

The whole library works in **seconds** internally.  The paper reports service
demands and delays in milliseconds, so these helpers keep conversions explicit
and greppable instead of scattering ``/ 1000.0`` across the code base.
"""

from __future__ import annotations

#: Seconds per millisecond.
MS = 1e-3

#: Seconds per microsecond.
US = 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds (``ms(12) == 0.012``)."""
    return value * MS


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds (``to_ms(0.012) == 12.0``)."""
    return seconds / MS


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * US


def per_second(rate_per_ms: float) -> float:
    """Convert a per-millisecond rate to a per-second rate."""
    return rate_per_ms / MS
