"""Core types shared across the repro library: parameters, results, errors."""

from .errors import (
    ConfigurationError,
    ConvergenceError,
    ProfilingError,
    ReproError,
    SimulationError,
    TransactionAborted,
)
from .params import (
    CPU,
    DISK,
    RESOURCES,
    ConflictProfile,
    ReplicationConfig,
    ResourceDemand,
    ServiceDemands,
    StandaloneProfile,
    WorkloadMix,
    replica_sweep,
)
from .results import (
    OperatingPoint,
    Prediction,
    ReplicaBreakdown,
    ScalabilityCurve,
    ValidationPoint,
    ValidationSeries,
    relative_error,
)
from .units import MS, US, ms, to_ms, us

__all__ = [
    "CPU",
    "DISK",
    "MS",
    "RESOURCES",
    "US",
    "ConfigurationError",
    "ConflictProfile",
    "ConvergenceError",
    "OperatingPoint",
    "Prediction",
    "ProfilingError",
    "ReplicaBreakdown",
    "ReplicationConfig",
    "ReproError",
    "ResourceDemand",
    "ScalabilityCurve",
    "ServiceDemands",
    "SimulationError",
    "StandaloneProfile",
    "TransactionAborted",
    "ValidationPoint",
    "ValidationSeries",
    "WorkloadMix",
    "ms",
    "relative_error",
    "replica_sweep",
    "to_ms",
    "us",
]
