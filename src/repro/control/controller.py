"""Autoscaling controllers: decide how many replicas the system needs.

Three policies, all sharing one tiny protocol (:class:`Controller`):

* **model-feedforward** — the paper's dynamic-provisioning use case: size
  each forecast window with :func:`repro.models.planning.plan_deployment`,
  consuming only the *standalone* profile.  The trace is the forecast (a
  data-center operator provisioning for a diurnal cycle knows tomorrow
  looks like today); the controller reads the worst case of the upcoming
  window and asks the model for the smallest deployment that serves it
  within the latency SLA, with head-room.
* **reactive threshold** — the model-free baseline every cloud offers:
  scale up when utilization or p95 latency crosses a high-water mark,
  scale down after sustained low utilization (hysteresis via patience
  counters, so one quiet interval does not flap the fleet).
* **static peak** — the control: one model call at build time sizes the
  system for the trace's peak, and it never moves.  Replica-hours saved
  by the other policies are measured against this.

Policies are *declarative* frozen dataclasses (stable ``repr``/pickle, so
they ride inside engine sweep points and cache keys);
:func:`make_controller` binds one to a concrete design, profile, and trace,
returning the stateful controller the harness ticks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from ..core.errors import ConfigurationError, ConvergenceError
from ..core.params import ReplicationConfig, StandaloneProfile
from ..models.api import predict
from ..models.planning import plan_deployment
from .trace import LoadTrace

#: Policy kinds, in the order comparisons report them.
POLICY_KINDS = ("feedforward", "reactive", "static-peak", "fixed")


@dataclass(frozen=True)
class ControlObservation:
    """What a controller sees at one control tick."""

    #: Current time (virtual seconds).
    now: float
    #: Replicas provisioned and serving (not draining away).
    members: int
    #: Replicas attached in any state — joining and draining included
    #: (what the deployment is paying for right now).
    attached: int
    #: Offered load of the trace at ``now`` (tps).
    offered_rate: float
    #: Transactions committed in the last control interval.
    commits: int
    #: Committed throughput over the last interval (tps).
    throughput: float
    #: Mean / p95 response time over the last interval (seconds).
    mean_response: float
    p95_response: float
    #: Busiest resource's utilization over the last interval, in [0, 1+).
    max_utilization: float
    #: Multi-window error-budget burn rates
    #: (:class:`repro.control.slo.BurnRate` tuples) from the harness's
    #: SLO monitor — an input signal any policy may consume; empty when
    #: no monitor is attached, and ignored by the built-in policies so
    #: existing decisions are unchanged.
    slo_burn: Tuple = ()

    @property
    def max_slo_burn(self) -> float:
        """The worst burn across all windows and signals (0 if none)."""
        return max((b.burn for b in self.slo_burn), default=0.0)


class Controller:
    """Protocol: map observations to a target replica count."""

    #: Report label (``feedforward`` | ``reactive`` | ``static-peak``).
    name: str = "abstract"

    def initial_target(self) -> int:
        """Replica count to provision before traffic starts."""
        raise NotImplementedError

    def target(self, observation: ControlObservation) -> int:
        """Desired replica count for the next interval."""
        raise NotImplementedError


@dataclass(frozen=True)
class FeedforwardPolicy:
    """Model-feedforward provisioning (the paper's use case)."""

    kind: ClassVar[str] = "feedforward"
    #: Forecast window the controller sizes for, in seconds ahead of now.
    #: Covers at least the join latency, so capacity lands before load.
    horizon: float = 30.0
    #: Capacity head-room handed to :func:`plan_deployment`.
    headroom: float = 0.2

    def __post_init__(self) -> None:
        if self.horizon <= 0.0:
            raise ConfigurationError("horizon must be positive")
        if not 0.0 <= self.headroom < 1.0:
            raise ConfigurationError("headroom must be in [0, 1)")


@dataclass(frozen=True)
class ReactivePolicy:
    """Threshold scaling with hysteresis (model-free baseline)."""

    kind: ClassVar[str] = "reactive"
    #: Scale up when the busiest resource exceeds this utilization, or
    #: when p95 latency exceeds the SLO.
    high_utilization: float = 0.75
    #: Scale down only below this utilization ...
    low_utilization: float = 0.35
    #: ... sustained for this many consecutive intervals (hysteresis).
    down_patience: int = 3
    #: Intervals the high condition must hold before scaling up.
    up_patience: int = 1
    #: Replicas added / removed per decision.
    step: int = 1
    #: Replicas provisioned at start (no model to size with).
    initial_replicas: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.low_utilization < self.high_utilization <= 1.5:
            raise ConfigurationError(
                "need 0 < low_utilization < high_utilization"
            )
        if self.up_patience < 1 or self.down_patience < 1:
            raise ConfigurationError("patience counts must be >= 1")
        if self.step < 1:
            raise ConfigurationError("step must be >= 1")
        if self.initial_replicas < 1:
            raise ConfigurationError("initial_replicas must be >= 1")


@dataclass(frozen=True)
class FixedPolicy:
    """Pin the fleet at an explicit replica count (no model, no profile).

    The membership policy of the operations scenarios: self-healing and
    rolling-upgrade runs want the *operations layer*, not the autoscaler,
    to be the only thing changing membership, and they should not pay for
    a profiling run just to size a constant fleet.
    """

    kind: ClassVar[str] = "fixed"
    replicas: int = 2

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError("replicas must be >= 1")


@dataclass(frozen=True)
class StaticPeakPolicy:
    """Fixed provisioning sized for the trace peak (the control)."""

    kind: ClassVar[str] = "static-peak"
    #: Capacity head-room used when sizing for the peak.
    headroom: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.headroom < 1.0:
            raise ConfigurationError("headroom must be in [0, 1)")


class _ModelSizer:
    """Smallest deployment serving a load within the SLA (memoized)."""

    def __init__(
        self,
        design: str,
        profile: StandaloneProfile,
        config: ReplicationConfig,
        slo_response: float,
        headroom: float,
        min_replicas: int,
        max_replicas: int,
    ) -> None:
        self.design = design
        self.profile = profile
        self.config = config
        self.slo_response = slo_response
        self.headroom = headroom
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self._memo: Dict[float, int] = {}

    def size_for(self, load: float) -> int:
        if load <= 0.0:
            return self.min_replicas
        # Quantize the load upward to three significant figures: a
        # continuously varying forecast (the diurnal ramp) collapses to a
        # few hundred buckets, so the MVA scan runs once per bucket, not
        # per tick — and rounding *up* (at most +0.5%, far inside the
        # head-room) can never under-provision the SLA.
        exponent = math.floor(math.log10(load))
        quantum = 10.0 ** (exponent - 2)
        key = math.ceil(load / quantum) * quantum
        load = key
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        try:
            plan = plan_deployment(
                self.profile,
                self.config,
                target_throughput=load,
                max_response_time=self.slo_response,
                designs=(self.design,),
                headroom=self.headroom,
                max_replicas=self.max_replicas,
            )
            replicas = self.max_replicas if plan is None else plan.replicas
        except ConvergenceError:
            # A deployment whose abort fixed point diverges is a saturated
            # one that cannot serve the window — skip it and keep growing
            # instead of failing the control loop.
            replicas = self._tolerant_scan(load)
        # An unreachable window saturates provisioning rather than failing
        # the run: the timeline shows the SLO violations honestly.
        replicas = max(self.min_replicas, min(self.max_replicas, replicas))
        self._memo[key] = replicas
        return replicas

    def _tolerant_scan(self, load: float) -> int:
        required = load / (1.0 - self.headroom)
        for n in range(1, self.max_replicas + 1):
            try:
                prediction = predict(
                    self.design, self.profile, self.config.with_replicas(n)
                )
            except ConvergenceError:
                continue
            if (prediction.throughput >= required
                    and prediction.response_time <= self.slo_response):
                return n
        return self.max_replicas


class FeedforwardController(Controller):
    """Sizes every upcoming window with the analytical model."""

    name = FeedforwardPolicy.kind

    def __init__(self, policy: FeedforwardPolicy, sizer: _ModelSizer,
                 trace: LoadTrace) -> None:
        self.policy = policy
        self._sizer = sizer
        self._trace = trace

    def initial_target(self) -> int:
        return self._sizer.size_for(self._trace.peak_between(
            0.0, self.policy.horizon))

    def target(self, observation: ControlObservation) -> int:
        forecast = self._trace.peak_between(
            observation.now, observation.now + self.policy.horizon
        )
        return self._sizer.size_for(forecast)


class ReactiveController(Controller):
    """Utilization/latency thresholds with hysteresis."""

    name = ReactivePolicy.kind

    def __init__(self, policy: ReactivePolicy, slo_response: float,
                 min_replicas: int, max_replicas: int) -> None:
        self.policy = policy
        self.slo_response = slo_response
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self._hot_streak = 0
        self._cold_streak = 0

    def initial_target(self) -> int:
        return max(self.min_replicas,
                   min(self.max_replicas, self.policy.initial_replicas))

    def target(self, observation: ControlObservation) -> int:
        policy = self.policy
        hot = observation.max_utilization >= policy.high_utilization or (
            observation.commits > 0
            and observation.p95_response > self.slo_response
        )
        cold = (
            not hot
            and observation.max_utilization <= policy.low_utilization
            and observation.p95_response <= 0.5 * self.slo_response
        )
        self._hot_streak = self._hot_streak + 1 if hot else 0
        self._cold_streak = self._cold_streak + 1 if cold else 0
        members = observation.members
        if self._hot_streak >= policy.up_patience:
            self._hot_streak = 0
            return min(self.max_replicas, members + policy.step)
        if self._cold_streak >= policy.down_patience:
            self._cold_streak = 0
            return max(self.min_replicas, members - policy.step)
        return members


class StaticPeakController(Controller):
    """The control: sized once for the peak, never resized."""

    name = StaticPeakPolicy.kind

    def __init__(self, replicas: int, name: Optional[str] = None) -> None:
        if name is not None:
            self.name = name
        self.replicas = replicas

    def initial_target(self) -> int:
        return self.replicas

    def target(self, observation: ControlObservation) -> int:
        return self.replicas


def make_controller(
    policy,
    *,
    design: str,
    trace: LoadTrace,
    slo_response: float,
    config: ReplicationConfig,
    profile: Optional[StandaloneProfile] = None,
    min_replicas: int = 1,
    max_replicas: int = 16,
) -> Controller:
    """Bind a declarative policy to a concrete run, returning a controller.

    *profile* (the standalone measurement) is required by the model-driven
    policies — feedforward and static-peak — mirroring the paper's claim
    that standalone profiling suffices for provisioning decisions.
    """
    if slo_response <= 0.0:
        raise ConfigurationError("slo_response must be positive")
    if not 1 <= min_replicas <= max_replicas:
        raise ConfigurationError(
            f"need 1 <= min_replicas <= max_replicas, got "
            f"[{min_replicas}, {max_replicas}]"
        )
    if isinstance(policy, ReactivePolicy):
        return ReactiveController(policy, slo_response,
                                  min_replicas, max_replicas)
    if isinstance(policy, FixedPolicy):
        return StaticPeakController(
            max(min_replicas, min(max_replicas, policy.replicas)),
            name=FixedPolicy.kind,
        )
    if profile is None:
        raise ConfigurationError(
            f"the {policy.kind} policy needs a standalone profile"
        )
    sizer = _ModelSizer(design, profile, config, slo_response,
                        policy.headroom, min_replicas, max_replicas)
    if isinstance(policy, FeedforwardPolicy):
        return FeedforwardController(policy, sizer, trace)
    if isinstance(policy, StaticPeakPolicy):
        return StaticPeakController(sizer.size_for(trace.max_rate))
    raise ConfigurationError(f"unknown controller policy {policy!r}")
