"""Online capacity estimation, model-drift monitoring, and gray-failure
detection for the control plane.

Three cooperating pieces, all fed from counters the executable pillars
already maintain (busy time, completions, and the unscaled ``work_done``
integral both resource implementations accumulate):

* :class:`FleetCapacityEstimator` — per replica, the delta ratio
  ``work_done / busy_time`` over a control interval *is* the effective
  rate multiplier the machine currently delivers, independent of the
  transaction mix.  An EWMA (seeded with the declared capacity) smooths
  it into a live :class:`~repro.telemetry.perf.EffectiveCapacity`, and a
  hysteresis band turns ratio crossings into gray-detect/gray-clear
  events.
* :class:`ModelDriftMonitor` — at every control tick, compares observed
  throughput against ``min(offered, predicted capacity at the current
  member count)`` from the analytic model and declares drift after
  enough consecutive ticks outside the crossval envelope.
* :class:`PerfMonitor` — the harness-facing glue: observes the fleet
  each tick, optionally *applies* estimates (``capacity_source
  estimated``: LB weights follow the estimates and the controller's
  target is inflated by the fleet health factor, so a brownout triggers
  compensating scale-up), stamps telemetry gauges and ops events, and
  freezes everything into a :class:`~repro.telemetry.perf.PerfReport`.

Observation is pure: when the source is ``declared`` the monitor only
reads counters and writes to its own buffers (and telemetry gauges), so
DES results stay bit-identical with the estimator on or off.
"""

from __future__ import annotations

import math
from difflib import get_close_matches
from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..telemetry.perf import (
    CapacitySnapshot,
    ComponentSignal,
    DriftPoint,
    EffectiveCapacity,
    Ewma,
    GrayEvent,
    PerfReport,
    WindowedQuantile,
)

#: Where the load balancer and controller take capacities from.
DECLARED = "declared"
ESTIMATED = "estimated"
CAPACITY_SOURCES = (DECLARED, ESTIMATED)

#: Estimated/declared ratio below which a replica is declared degraded,
#: and the (higher) ratio at which it is declared recovered — the gap is
#: the hysteresis band that stops a noisy estimate from flapping.
DETECT_RATIO = 0.8
CLEAR_RATIO = 0.9

#: The crossval envelope: relative model residuals beyond this are
#: breaches (matches the |error| < 15% the offline crossval tolerates).
DRIFT_ENVELOPE = 0.15
#: Consecutive breaching ticks before the loud drift verdict.
DRIFT_PATIENCE = 2


def resolve_capacity_source(source) -> Optional[str]:
    """Normalise a capacity-source argument to ``None`` or ``ESTIMATED``.

    ``None`` and ``"declared"`` both mean the pre-estimator behaviour and
    normalise to ``None``, so scenario options — and therefore cache
    keys — are byte-identical to omitting the switch entirely.
    """
    if source is None or source == DECLARED:
        return None
    if source == ESTIMATED:
        return ESTIMATED
    hint = get_close_matches(str(source), CAPACITY_SOURCES, n=1)
    suffix = f"; did you mean {hint[0]}?" if hint else ""
    raise ConfigurationError(
        f"unknown capacity source {source!r}; one of "
        f"{'|'.join(CAPACITY_SOURCES)}{suffix}"
    )


def _resource_counters(resource) -> Tuple[float, float, int]:
    """(busy_time, work_done, completions) for either pillar's resource."""
    busy = resource.busy_time_now()
    stats = getattr(resource, "stats", None)
    if stats is not None:
        return busy, stats.work_done, stats.completions
    return busy, resource.work_done, resource.completions


class _ReplicaTracker:
    """Windowed counter deltas and the capacity EWMA for one replica."""

    def __init__(self, name: str, declared: float,
                 half_life: float) -> None:
        self.name = name
        self.declared = declared
        self.rate = Ewma(half_life, initial=declared)
        self.service_times = WindowedQuantile(64)
        self.utilization: Dict[str, Ewma] = {}
        self.last_utilization = 0.0
        self.degraded = False
        self._totals: Dict[str, Tuple[float, float, int]] = {}
        self._last_time: Optional[float] = None

    def observe(self, now: float, replica) -> EffectiveCapacity:
        elapsed = (now - self._last_time
                   if self._last_time is not None else 0.0)
        self._last_time = now
        d_busy = d_work = 0.0
        d_completions = 0
        bottleneck = 0.0
        for resource in (replica.cpu, replica.disk):
            busy, work, completions = _resource_counters(resource)
            prev = self._totals.get(resource.name, (busy, work, completions))
            self._totals[resource.name] = (busy, work, completions)
            d_busy += busy - prev[0]
            d_work += work - prev[1]
            d_completions += completions - prev[2]
            if elapsed > 0.0:
                utilization = max(0.0, (busy - prev[0]) / elapsed)
                ewma = self.utilization.get(resource.name)
                if ewma is None:
                    ewma = self.utilization[resource.name] = Ewma(
                        self.rate.half_life, initial=utilization
                    )
                else:
                    ewma.update(utilization, dt=elapsed)
                bottleneck = max(bottleneck, utilization)
        self.last_utilization = bottleneck
        if elapsed > 0.0:
            # Hold the last estimate through idle windows: a replica that
            # served almost nothing provides no rate evidence.
            if d_busy > 0.01 * elapsed and d_work > 0.0:
                self.rate.update(d_work / d_busy, dt=elapsed)
            if d_completions > 0:
                self.service_times.observe(d_work / d_completions)
        return EffectiveCapacity(
            time=now,
            replica=self.name,
            declared=self.declared,
            estimated=self.rate.value,
            utilization=bottleneck,
        )


class FleetCapacityEstimator:
    """Live per-replica effective-capacity estimates for a whole fleet.

    Call :meth:`observe_fleet` once per control tick; trackers are
    created on first sight of a replica (capturing its *declared*
    capacity before anything mutates it) and survive membership churn
    by name.
    """

    def __init__(self, interval: float, half_life: Optional[float] = None,
                 detect_ratio: float = DETECT_RATIO,
                 clear_ratio: float = CLEAR_RATIO) -> None:
        if interval <= 0.0:
            raise ConfigurationError(
                "estimator interval must be positive"
            )
        if not 0.0 < detect_ratio <= clear_ratio:
            raise ConfigurationError(
                "detect ratio must be in (0, clear_ratio]"
            )
        self.half_life = half_life if half_life is not None else interval
        self.detect_ratio = detect_ratio
        self.clear_ratio = clear_ratio
        self._trackers: Dict[str, _ReplicaTracker] = {}
        self.snapshots: List[CapacitySnapshot] = []
        self.events: List[GrayEvent] = []

    def observe_fleet(
        self, now: float, replicas
    ) -> Tuple[CapacitySnapshot, Tuple[GrayEvent, ...]]:
        """Sample every live replica; returns the snapshot and any
        detection transitions this tick produced."""
        capacities = []
        fresh: List[GrayEvent] = []
        for replica in replicas:
            if getattr(replica, "failed", False):
                continue
            tracker = self._trackers.get(replica.name)
            if tracker is None:
                tracker = self._trackers[replica.name] = _ReplicaTracker(
                    replica.name,
                    float(getattr(replica, "capacity", 1.0)),
                    self.half_life,
                )
            capacity = tracker.observe(now, replica)
            capacities.append(capacity)
            if not tracker.degraded and capacity.ratio < self.detect_ratio:
                tracker.degraded = True
                fresh.append(GrayEvent(
                    now, tracker.name, capacity.ratio, "gray-detect"
                ))
            elif tracker.degraded and capacity.ratio >= self.clear_ratio:
                tracker.degraded = False
                fresh.append(GrayEvent(
                    now, tracker.name, capacity.ratio, "gray-clear"
                ))
        snapshot = CapacitySnapshot(time=now, capacities=tuple(capacities))
        self.snapshots.append(snapshot)
        self.events.extend(fresh)
        return snapshot, tuple(fresh)

    def estimate_for(self, name: str) -> Optional[float]:
        """The current smoothed capacity estimate for one replica."""
        tracker = self._trackers.get(name)
        return None if tracker is None else tracker.rate.value

    def any_degraded(self) -> bool:
        """Is some replica currently inside the gray-detect band?"""
        return any(t.degraded for t in self._trackers.values())

    def health(self) -> float:
        """Fleet health factor: estimated over declared capacity of the
        latest snapshot, clamped to (0, 1] (a fleet can be degraded, it
        is never credited beyond what was declared)."""
        if not self.snapshots:
            return 1.0
        latest = self.snapshots[-1].capacities
        declared = sum(cap.declared for cap in latest)
        estimated = sum(cap.estimated for cap in latest)
        if declared <= 0.0 or estimated <= 0.0:
            return 1.0
        return max(1e-3, min(1.0, estimated / declared))

    def attribution(self, top: int = 3) -> Tuple[ComponentSignal, ...]:
        """Rank resources by smoothed utilization: the run's slowest
        components, annotated with the owner's p95 service demand."""
        signals: List[ComponentSignal] = []
        for tracker in self._trackers.values():
            p95 = tracker.service_times.quantile(0.95)
            for resource_name, ewma in tracker.utilization.items():
                signals.append(ComponentSignal(
                    component=resource_name,
                    score=ewma.value or 0.0,
                    detail=(
                        f"capacity {tracker.rate.value:.2f}/"
                        f"{tracker.declared:.2f}, p95 demand "
                        f"{p95 * 1000:.1f} ms"
                    ),
                ))
        signals.sort(key=lambda s: s.score, reverse=True)
        return tuple(signals[:top])


class ModelDriftMonitor:
    """Compare the analytic model against observed behaviour, live.

    The offline crossval already bounds the model's error on clean runs;
    this monitor re-evaluates the same comparison at every control tick,
    so a deployment learns *while running* when reality leaves the
    envelope (a gray failure, an unmodelled bottleneck, a stale
    profile).  Predictions are memoized per member count — a tick costs
    one dict lookup once the fleet has been seen at that size.
    """

    def __init__(self, design: str, profile, config,
                 envelope: float = DRIFT_ENVELOPE,
                 patience: int = DRIFT_PATIENCE) -> None:
        from ..models.api import predict

        self._predict = predict
        self._design = design
        self._profile = profile
        self._config = config
        self.envelope = envelope
        self.patience = patience
        self._memo: Dict[int, object] = {}
        self._streak = 0
        self.points: List[DriftPoint] = []

    def _prediction(self, members: int):
        cached = self._memo.get(members)
        if cached is None:
            cached = self._memo[members] = self._predict(
                self._design, self._profile,
                self._config.with_replicas(members),
            )
        return cached

    def observe(self, now: float, members: int, offered_rate: float,
                throughput: float, p95: float) -> Optional[DriftPoint]:
        """Score one control tick; returns the drift point (None when
        the tick carries no signal — an empty fleet or no offered load).
        """
        if members <= 0:
            return None
        prediction = self._prediction(members)
        predicted = min(offered_rate, prediction.throughput)
        if predicted <= 1e-9:
            return None
        residual = (throughput - predicted) / predicted
        breach = abs(residual) > self.envelope
        self._streak = self._streak + 1 if breach else 0
        point = DriftPoint(
            time=now,
            members=members,
            offered_rate=offered_rate,
            predicted_throughput=predicted,
            observed_throughput=throughput,
            residual=residual,
            predicted_p95=3.0 * prediction.response_time,
            observed_p95=p95,
            breach=breach,
            verdict=self._streak >= self.patience,
        )
        self.points.append(point)
        return point


class PerfMonitor:
    """Harness glue: one object the control loop ticks every interval.

    *apply* selects the capacity source: ``False`` is pure observation
    (capacity estimates and drift points are recorded but change
    nothing); ``True`` makes the capacity-weighted LB read the estimates
    (``replica.capacity`` is updated in place — both pillars route on
    that attribute) and :meth:`adjust_target` inflate the controller's
    replica target by the inverse fleet-health factor, which is what
    recovers throughput under a brownout.
    """

    def __init__(self, *, interval: float, pillar: str,
                 apply: bool = False,
                 drift: Optional[ModelDriftMonitor] = None,
                 telemetry=None,
                 event_sink: Optional[Callable[[float, str, str],
                                               None]] = None) -> None:
        self.estimator = FleetCapacityEstimator(interval)
        self.drift = drift
        self.apply = apply
        self.telemetry = telemetry
        self.event_sink = event_sink
        self.pillar = pillar
        #: Detection latency evidence: (onset-relative) detections are
        #: derived from the report; the raw events live on the estimator.

    def on_tick(self, now: float, replicas, *, members: int,
                offered_rate: float, throughput: float,
                p95: float) -> None:
        """Observe the fleet and (in apply mode) push estimates out."""
        snapshot, fresh = self.estimator.observe_fleet(now, replicas)
        if self.telemetry is not None:
            for capacity in snapshot.capacities:
                self.telemetry.observe_capacity(
                    capacity.replica, capacity.ratio
                )
            for event in fresh:
                if event.kind == "gray-detect":
                    self.telemetry.count_gray_detection(event.replica)
        if self.event_sink is not None:
            for event in fresh:
                self.event_sink(event.time, event.kind, event.replica)
        if self.apply:
            for replica in replicas:
                if getattr(replica, "failed", False):
                    continue
                estimated = self.estimator.estimate_for(replica.name)
                if estimated is not None and estimated > 0.0:
                    # Both routers read `capacity` at dispatch time; the
                    # configured rate multipliers are untouched.
                    replica.capacity = estimated
        if self.drift is not None:
            point = self.drift.observe(
                now, members, offered_rate, throughput, p95
            )
            if point is not None and self.telemetry is not None:
                self.telemetry.observe_model_residual(point.residual)
                if point.verdict:
                    self.telemetry.count_drift_verdict()

    def adjust_target(self, target: int) -> int:
        """Inflate the controller's target by the fleet health factor.

        A fleet at health ``h`` delivers ``h`` times its declared
        capacity, so meeting the controller's sizing takes
        ``ceil(target / h)`` attached replicas.  The adjustment is
        gated on an actual gray detection: ordinary measurement noise
        (the live pillar's timers systematically overshoot a few
        percent) must not inflate a healthy fleet.  Declared mode
        returns the target unchanged (the estimator stays an observer).
        """
        if not self.apply or not self.estimator.any_degraded():
            return target
        health = self.estimator.health()
        if health >= 0.999:
            return target
        return int(math.ceil(target / health))

    def report(self) -> PerfReport:
        """Freeze everything observed into the run's perf report."""
        return PerfReport(
            pillar=self.pillar,
            source=ESTIMATED if self.apply else DECLARED,
            snapshots=tuple(self.estimator.snapshots),
            drift=tuple(self.drift.points) if self.drift else (),
            detections=tuple(self.estimator.events),
            attribution=self.estimator.attribution(),
        )
