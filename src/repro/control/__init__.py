"""Autoscaling control plane: live dynamic provisioning from the predictors.

The paper names *dynamic service provisioning* for data centers with
diurnal load as a first-class consumer of its scalability predictors; this
package closes the loop that :mod:`repro.models.planning` only computes
offline.  It has three layers:

* :mod:`repro.control.trace` — open-loop **load traces** (diurnal sinusoid,
  flash-crowd spike, Markov-modulated bursts, piecewise-from-file) shared
  by the simulator and the live cluster drivers;
* :mod:`repro.control.controller` — the **controller policies**:
  model-feedforward (the paper's use case — size each forecast window with
  :func:`repro.models.planning.plan_deployment`), reactive threshold
  (utilization/latency hysteresis baseline), and static peak (control);
* :mod:`repro.control.autoscale` — the **AutoscaleRun harness** that plays
  a trace against an *elastic* execution pillar (the DES simulator or the
  live cluster, both of which grow and shrink via
  ``add_replica``/``remove_replica``) and records the full timeline:
  offered load, replica count, p95 latency, SLO violations, replica-hours;
* :mod:`repro.control.slo` — the **SLO monitor** computing multi-window
  error-budget burn rates (latency and abort signals) at every control
  tick, surfaced on the timeline, exported as a telemetry gauge, and
  consumable by controllers via ``ControlObservation.slo_burn``.

Scenario registrations (``autoscale-diurnal``, ``autoscale-flashcrowd``,
...) live in :mod:`repro.control.scenarios`, imported by
:mod:`repro.experiments` so the registry sees them.
"""

from .autoscale import (
    AutoscaleComparison,
    AutoscaleResult,
    TimelinePoint,
    autoscale_cluster,
    autoscale_sim,
    render_timeline,
)
from .controller import (
    POLICY_KINDS,
    ControlObservation,
    Controller,
    FeedforwardPolicy,
    ReactivePolicy,
    StaticPeakPolicy,
    make_controller,
)
from .slo import BurnRate, SLOMonitor, max_burn
from .trace import (
    DiurnalTrace,
    FlashCrowdTrace,
    LoadTrace,
    ModulatedTrace,
    PiecewiseTrace,
)

__all__ = [
    "AutoscaleComparison",
    "AutoscaleResult",
    "BurnRate",
    "ControlObservation",
    "Controller",
    "DiurnalTrace",
    "FeedforwardPolicy",
    "FlashCrowdTrace",
    "LoadTrace",
    "ModulatedTrace",
    "POLICY_KINDS",
    "PiecewiseTrace",
    "ReactivePolicy",
    "SLOMonitor",
    "StaticPeakPolicy",
    "TimelinePoint",
    "autoscale_cluster",
    "autoscale_sim",
    "make_controller",
    "max_burn",
    "render_timeline",
]
