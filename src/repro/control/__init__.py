"""Autoscaling control plane: live dynamic provisioning from the predictors.

The paper names *dynamic service provisioning* for data centers with
diurnal load as a first-class consumer of its scalability predictors; this
package closes the loop that :mod:`repro.models.planning` only computes
offline.  It has three layers:

* :mod:`repro.control.trace` — open-loop **load traces** (diurnal sinusoid,
  flash-crowd spike, Markov-modulated bursts, piecewise-from-file) shared
  by the simulator and the live cluster drivers;
* :mod:`repro.control.controller` — the **controller policies**:
  model-feedforward (the paper's use case — size each forecast window with
  :func:`repro.models.planning.plan_deployment`), reactive threshold
  (utilization/latency hysteresis baseline), and static peak (control);
* :mod:`repro.control.autoscale` — the **AutoscaleRun harness** that plays
  a trace against an *elastic* execution pillar (the DES simulator or the
  live cluster, both of which grow and shrink via
  ``add_replica``/``remove_replica``) and records the full timeline:
  offered load, replica count, p95 latency, SLO violations, replica-hours.

Scenario registrations (``autoscale-diurnal``, ``autoscale-flashcrowd``,
...) live in :mod:`repro.control.scenarios`, imported by
:mod:`repro.experiments` so the registry sees them.
"""

from .autoscale import (
    AutoscaleComparison,
    AutoscaleResult,
    TimelinePoint,
    autoscale_cluster,
    autoscale_sim,
    render_timeline,
)
from .controller import (
    POLICY_KINDS,
    ControlObservation,
    Controller,
    FeedforwardPolicy,
    ReactivePolicy,
    StaticPeakPolicy,
    make_controller,
)
from .trace import (
    DiurnalTrace,
    FlashCrowdTrace,
    LoadTrace,
    ModulatedTrace,
    PiecewiseTrace,
)

__all__ = [
    "AutoscaleComparison",
    "AutoscaleResult",
    "ControlObservation",
    "Controller",
    "DiurnalTrace",
    "FeedforwardPolicy",
    "FlashCrowdTrace",
    "LoadTrace",
    "ModulatedTrace",
    "POLICY_KINDS",
    "PiecewiseTrace",
    "ReactivePolicy",
    "StaticPeakPolicy",
    "TimelinePoint",
    "autoscale_cluster",
    "autoscale_sim",
    "make_controller",
    "render_timeline",
]
