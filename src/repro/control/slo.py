"""Multi-window SLO error-budget burn rates for the control plane.

An SLO is an error budget: "at most 5% of commits may exceed the latency
target".  The **burn rate** is how fast a run is spending that budget —
the observed bad fraction divided by the budgeted fraction, so burn 1.0
exactly exhausts the budget over the window and burn 3.0 exhausts it 3×
too fast.  Following the multi-window alerting practice, the monitor
evaluates every budget over several trailing windows at once (default
5 m and 1 h): the short window catches a fast regression quickly, the
long one filters noise — paging only when *both* burn is the classic
rule, and both are surfaced here for the controller and the timeline.

Two signals are tracked per window:

* ``latency`` — the fraction of interval commits whose response time
  exceeded the run's SLO, against :attr:`SLOMonitor.latency_budget`;
* ``abort``  — the certification-abort fraction (aborts over attempts),
  against :attr:`SLOMonitor.abort_budget`.

The monitor is pure bookkeeping over the interval statistics the
autoscale harness already computes — no clocks, no randomness — so it
runs identically on the DES and live pillars and never perturbs either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.errors import ConfigurationError

#: Signal names (the ``signal`` label of the burn-rate gauge).
LATENCY = "latency"
ABORT = "abort"

#: Default trailing windows: (label, seconds).
DEFAULT_WINDOWS: Tuple[Tuple[str, float], ...] = (
    ("5m", 300.0),
    ("1h", 3600.0),
)


@dataclass(frozen=True)
class BurnRate:
    """One (window, signal) burn measurement at a control tick."""

    #: Window label (``5m``, ``1h``, ...).
    window: str
    #: ``latency`` or ``abort``.
    signal: str
    #: Observed bad fraction divided by the budgeted fraction;
    #: burn >= 1.0 means the budget is being spent too fast.
    burn: float

    def to_text(self) -> str:
        return f"{self.signal}[{self.window}]={self.burn:.2f}"


def max_burn(burns: Tuple[BurnRate, ...], signal: str = None) -> float:
    """The worst burn across windows (optionally for one signal)."""
    values = [
        b.burn for b in burns if signal is None or b.signal == signal
    ]
    return max(values, default=0.0)


class SLOMonitor:
    """Compute multi-window error-budget burn rates from interval stats.

    The autoscale control loop calls :meth:`observe` once per control
    tick with that interval's commit, violation, and abort counts; the
    monitor aggregates them over each trailing window and returns the
    burn rates, newest evaluation also available via :meth:`latest`.
    """

    def __init__(
        self,
        latency_budget: float = 0.05,
        abort_budget: float = 0.05,
        windows: Tuple[Tuple[str, float], ...] = DEFAULT_WINDOWS,
    ) -> None:
        if latency_budget <= 0.0 or abort_budget <= 0.0:
            raise ConfigurationError("error budgets must be positive")
        if not windows:
            raise ConfigurationError("need at least one burn window")
        for label, seconds in windows:
            if seconds <= 0.0:
                raise ConfigurationError(
                    f"window {label!r} must span positive seconds"
                )
        self.latency_budget = latency_budget
        self.abort_budget = abort_budget
        self.windows = tuple(windows)
        self._horizon = max(seconds for _, seconds in self.windows)
        #: (time, commits, violations, aborts) per observed interval.
        self._intervals: List[Tuple[float, int, int, int]] = []
        self._latest: Tuple[BurnRate, ...] = ()

    def observe(
        self, now: float, commits: int, violations: int, aborts: int = 0
    ) -> Tuple[BurnRate, ...]:
        """Record one control interval and return the current burns."""
        self._intervals.append((now, commits, violations, aborts))
        # Drop intervals no window can reach (bounded memory over long
        # runs; strictly older than the longest trailing window).
        cutoff = now - self._horizon
        while self._intervals and self._intervals[0][0] < cutoff:
            self._intervals.pop(0)
        burns = []
        for label, seconds in self.windows:
            start = now - seconds
            commits_w = violations_w = aborts_w = 0
            for time, c, v, a in reversed(self._intervals):
                if time < start:
                    break
                commits_w += c
                violations_w += v
                aborts_w += a
            if commits_w > 0:
                bad = violations_w / commits_w
            else:
                bad = 0.0
            burns.append(BurnRate(label, LATENCY, bad / self.latency_budget))
            attempts = commits_w + aborts_w
            abort_fraction = aborts_w / attempts if attempts else 0.0
            burns.append(
                BurnRate(label, ABORT, abort_fraction / self.abort_budget)
            )
        self._latest = tuple(burns)
        return self._latest

    def latest(self) -> Tuple[BurnRate, ...]:
        """The burns from the most recent :meth:`observe` call."""
        return self._latest
