"""Registered autoscale scenarios: policy comparisons under trace load.

Each scenario is a grid of :func:`repro.engine.scenario.autoscale_point`
cells — (design × controller policy) under one load trace — assembled
into an :class:`~repro.control.autoscale.AutoscaleComparison`.  Because
they are ordinary engine scenarios, ``repro run autoscale-diurnal --jobs
6`` fans the runs out over a process pool and deterministic simulator
cells land in the disk cache like any other sweep point.

The trace rates are *derived from the standalone profile* while the grid
is built: the peak is anchored to the model's predicted capacity at
``settings.autoscale_peak_replicas`` for each design, so every design
sweeps the same relative load range regardless of its absolute capacity —
and the whole pipeline stays faithful to the paper's methodology
(standalone measurements in, provisioning decisions out).

``autoscale-diurnal-live`` is the live-cluster validation cell: a smaller
trace on a millisecond-scale workload, run on real threads with real
elastic membership; it reports the same comparison plus the
replication-correctness evidence.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from ..core.params import ConflictProfile, WorkloadMix
from ..engine import CLUSTER, Scenario, autoscale_point, register_scenario
from ..engine.scenario import profile_task
from ..models.api import predict
from ..simulator.runner import MULTI_MASTER, SINGLE_MASTER
from ..workloads import tpcw
from ..workloads.spec import WorkloadSpec, demands_ms
from .autoscale import AutoscaleComparison, AutoscaleResult
from .controller import FeedforwardPolicy, ReactivePolicy, StaticPeakPolicy
from .trace import DiurnalTrace, FlashCrowdTrace

#: Latency SLA the autoscale scenarios enforce (seconds).  Generous
#: relative to TPC-W response times at the sized operating points, so
#: violations indicate genuine under-provisioning, not tail noise.
SLO_RESPONSE = 1.5

#: Head-room shared by the model-driven policies (feedforward sizing and
#: the static-peak control) so replica-hour comparisons are apples to
#: apples.
HEADROOM = 0.25


def _policies(settings):
    # Forecast two control periods ahead: enough lead for joins (bulk
    # replay) to land before the load does, small against the trace
    # period so the trough is actually tracked.
    horizon = 2.0 * settings.autoscale_control_interval
    return (
        FeedforwardPolicy(horizon=horizon, headroom=HEADROOM),
        ReactivePolicy(initial_replicas=2, low_utilization=0.45,
                       down_patience=2),
        StaticPeakPolicy(headroom=HEADROOM),
    )


def _design_capacity(design: str, spec: WorkloadSpec, settings) -> float:
    """Predicted capacity anchoring the trace peak for *design*."""
    from ..experiments.context import get_profile

    profile = get_profile(spec, settings)
    config = spec.replication_config(
        settings.autoscale_peak_replicas,
        load_balancer_delay=settings.load_balancer_delay,
        certifier_delay=settings.certifier_delay,
    )
    return predict(design, profile, config).throughput


def _autoscale_points(settings, spec: WorkloadSpec, trace_for,
                      designs: Sequence[str]) -> List:
    task = profile_task(spec, settings)
    points = []
    for design in designs:
        capacity = _design_capacity(design, spec, settings)
        trace = trace_for(settings, capacity)
        for policy in _policies(settings):
            points.append(autoscale_point(
                spec,
                spec.replication_config(
                    1,
                    load_balancer_delay=settings.load_balancer_delay,
                    certifier_delay=settings.certifier_delay,
                ),
                design,
                seed=settings.seed,
                trace=trace,
                policy=policy,
                slo_response=SLO_RESPONSE,
                warmup=settings.autoscale_warmup,
                duration=settings.autoscale_duration,
                control_interval=settings.autoscale_control_interval,
                max_replicas=2 * settings.autoscale_peak_replicas,
                telemetry=getattr(settings, "telemetry", None),
                capacity_source=getattr(settings, "capacity_source", None),
                profile=task,
                tag=f"{design}:{policy.kind}",
            ))
    return points


def _assemble(spec, pillar, settings, points, results) -> AutoscaleComparison:
    ordered: List[AutoscaleResult] = [r for r in results]
    return AutoscaleComparison(
        workload=spec.name,
        trace=ordered[0].trace if ordered else "",
        pillar=pillar,
        slo_response=SLO_RESPONSE,
        results=tuple(ordered),
    )


def _diurnal_trace(settings, capacity: float) -> DiurnalTrace:
    # Two full day/night cycles across the run; load swings between 10%
    # and 85% of the anchor capacity — the day/night ratio real
    # data-center traces show, and wide enough that tracking the trough
    # pays for itself.
    return DiurnalTrace(
        base_rate=0.10 * capacity,
        peak_rate=0.85 * capacity,
        period=settings.autoscale_duration / 2.0,
    )


def _flashcrowd_trace(settings, capacity: float) -> FlashCrowdTrace:
    # Quiet baseline with one sharp spike in the middle of the window.
    duration = settings.autoscale_duration
    return FlashCrowdTrace(
        base_rate=0.20 * capacity,
        spike_rate=0.80 * capacity,
        spike_start=settings.autoscale_warmup + 0.40 * duration,
        spike_duration=0.20 * duration,
        ramp=max(2.0 * settings.autoscale_control_interval, 10.0),
    )


def _register(name: str, title: str, trace_for, aliases=()) -> Scenario:
    spec = tpcw.SHOPPING
    designs = (MULTI_MASTER, SINGLE_MASTER)

    def points(settings):
        return _autoscale_points(settings, spec, trace_for, designs)

    def assemble(settings, pts, results):
        return _assemble(spec, "simulator", settings, pts, results)

    return register_scenario(Scenario(
        name=name,
        title=title,
        kind="autoscale",
        metrics=("replica_seconds", "slo_violation_fraction"),
        points=points,
        assemble=assemble,
        aliases=aliases,
    ))


DIURNAL = _register(
    "autoscale-diurnal",
    "Autoscaling policies under diurnal load (TPC-W shopping)",
    _diurnal_trace,
    aliases=("autoscale",),
)

FLASHCROWD = _register(
    "autoscale-flashcrowd",
    "Autoscaling policies under a flash crowd (TPC-W shopping)",
    _flashcrowd_trace,
)


# ----------------------------------------------------------------------
# Live-cluster validation scenario
# ----------------------------------------------------------------------

#: Millisecond-scale workload for the live cells: heavy enough that the
#: emulated service sleeps dominate scheduler jitter, light enough that
#: the open-loop thread-per-transaction driver stays comfortable.
LIVE_SPEC = WorkloadSpec(
    benchmark="micro",
    mix_name="autoscale-live",
    mix=WorkloadMix(read_fraction=0.7, write_fraction=0.3),
    demands=demands_ms(
        read_cpu=40.0, read_disk=15.0,
        write_cpu=25.0, write_disk=10.0,
        writeset_cpu=2.0, writeset_disk=1.0,
    ),
    clients_per_replica=6,
    think_time=0.2,
    conflict=ConflictProfile(db_update_size=1000, updates_per_transaction=2),
    description="millisecond-scale mix for live autoscale validation",
)

#: Live runs are short: virtual durations and the wall-time scale.
LIVE_WARMUP = 2.0
LIVE_DURATION = 20.0
LIVE_CONTROL_INTERVAL = 1.0
LIVE_TIME_SCALE = 0.25
LIVE_PEAK_REPLICAS = 3


def _live_points(settings) -> List:
    task = profile_task(LIVE_SPEC, settings)
    capacity = _live_design_capacity(settings)
    trace = DiurnalTrace(
        base_rate=0.15 * capacity,
        peak_rate=0.80 * capacity,
        period=LIVE_DURATION / 2.0,
    )
    points = []
    for policy in _policies(settings):
        points.append(autoscale_point(
            LIVE_SPEC,
            LIVE_SPEC.replication_config(
                1, load_balancer_delay=0.0005, certifier_delay=0.002,
            ),
            MULTI_MASTER,
            seed=settings.seed,
            trace=trace,
            policy=_live_policy(policy),
            slo_response=SLO_RESPONSE,
            warmup=LIVE_WARMUP,
            duration=LIVE_DURATION,
            control_interval=LIVE_CONTROL_INTERVAL,
            pillar=CLUSTER,
            time_scale=LIVE_TIME_SCALE,
            max_replicas=2 * LIVE_PEAK_REPLICAS,
            transfer_writesets=8,
            telemetry=getattr(settings, "telemetry", None),
            capacity_source=getattr(settings, "capacity_source", None),
            profile=task,
            tag=f"live:{policy.kind}",
        ))
    return points


def _live_policy(policy):
    """Shrink policy time constants to the live run's short horizon.

    Only the time constants change — thresholds and head-room carry over
    from :func:`_policies`, so cross-pillar comparisons differ only in
    pillar physics.
    """
    if isinstance(policy, FeedforwardPolicy):
        return dataclasses.replace(policy,
                                   horizon=2.0 * LIVE_CONTROL_INTERVAL)
    if isinstance(policy, ReactivePolicy):
        return dataclasses.replace(policy, down_patience=2)
    return policy


def _live_design_capacity(settings) -> float:
    from ..experiments.context import get_profile

    profile = get_profile(LIVE_SPEC, settings)
    config = LIVE_SPEC.replication_config(LIVE_PEAK_REPLICAS)
    return predict(MULTI_MASTER, profile, config).throughput


LIVE = register_scenario(Scenario(
    name="autoscale-diurnal-live",
    title="Live-cluster autoscaling under diurnal load (elastic membership)",
    kind="autoscale",
    metrics=("replica_seconds", "slo_violation_fraction", "converged"),
    points=_live_points,
    assemble=lambda settings, pts, results: _assemble(
        LIVE_SPEC, "cluster", settings, pts, results
    ),
    aliases=("autoscale-live",),
    tags=("live",),
))
