"""Open-loop load traces: offered arrival rate as a function of time.

A :class:`LoadTrace` describes the *offered* transaction rate (tps, in
virtual seconds) of an open-loop client population over time — the traffic
model of the dynamic-provisioning use case the paper motivates: data-center
load follows diurnal cycles, with occasional flash crowds on top.

Traces are consumed two ways:

* the **drivers** (simulator :meth:`~repro.simulator.systems._BaseSystem.
  start_trace_arrivals` and the live-cluster trace source) sample a
  non-homogeneous Poisson process from them by *thinning* [Lewis &
  Shedler 1979]: candidate arrivals at :attr:`max_rate`, each kept with
  probability ``rate(t) / max_rate``;
* the **feedforward controller** reads them as its load forecast:
  :meth:`peak_between` is the worst case of the upcoming window, handed to
  :func:`repro.models.planning.plan_deployment`.

Every trace is a frozen dataclass whose ``repr`` is a stable function of
its fields, so traces participate in the engine's content-addressed cache
keys; :class:`ModulatedTrace`'s randomness is derived from an explicit
seed, never from global state, keeping sweep points reproducible.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from ..core import rng as rng_util
from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class LoadTrace:
    """Base class: a deterministic offered-rate curve ``rate(t)``."""

    def rate(self, t: float) -> float:
        """Offered arrival rate (tps) at time *t* seconds."""
        raise NotImplementedError

    @property
    def max_rate(self) -> float:
        """Supremum of :meth:`rate` — the thinning bound of the drivers."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Short name used in reports (``diurnal``, ``flash-crowd``, ...)."""
        raise NotImplementedError

    def peak_between(self, t0: float, t1: float) -> float:
        """Maximum rate over ``[t0, t1]`` (the forecast-window worst case).

        The generic implementation samples densely; subclasses with known
        structure (spikes, breakpoints) override it exactly so narrow
        bursts cannot slip between samples.
        """
        if t1 < t0:
            raise ConfigurationError(f"empty forecast window [{t0}, {t1}]")
        samples = 64
        step = (t1 - t0) / samples if t1 > t0 else 0.0
        return max(self.rate(t0 + i * step) for i in range(samples + 1))

    def accept_arrival(self, rng, now: float) -> bool:
        """Thinning accept step [Lewis & Shedler 1979].

        Candidate arrivals are drawn at :attr:`max_rate`; each is kept
        with probability ``rate(now) / max_rate``.  The one accept/reject
        decision both pillars' open-loop drivers share, so the
        simulator's and the live cluster's arrival processes can never
        drift apart.  Consumes exactly one ``rng.random()`` draw.
        """
        return float(rng.random()) * self.max_rate <= self.rate(now)


def _require_rate(value: float, name: str) -> None:
    if value < 0.0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class DiurnalTrace(LoadTrace):
    """A day/night sinusoid between ``base_rate`` and ``peak_rate``.

    ``rate(t) = base + (peak - base) * (1 - cos(2π (t + phase)/period)) / 2``
    — starts at the trough for ``phase=0`` and reaches the peak half a
    period in, the shape of the diurnal cycles §1 of the paper names as
    the dynamic-provisioning driver.
    """

    base_rate: float
    peak_rate: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        _require_rate(self.base_rate, "base_rate")
        if self.peak_rate < self.base_rate:
            raise ConfigurationError("peak_rate must be >= base_rate")
        if self.peak_rate <= 0.0:
            raise ConfigurationError("peak_rate must be positive")
        if self.period <= 0.0:
            raise ConfigurationError("period must be positive")

    def rate(self, t: float) -> float:
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t + self.phase) / self.period))
        return self.base_rate + (self.peak_rate - self.base_rate) * swing

    @property
    def max_rate(self) -> float:
        return self.peak_rate

    @property
    def label(self) -> str:
        return "diurnal"

    def peak_between(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ConfigurationError(f"empty forecast window [{t0}, {t1}]")
        # The maxima sit at (t + phase) = period * (k + 1/2); if the window
        # contains one, the answer is exactly the peak.
        k = math.ceil((t0 + self.phase) / self.period - 0.5)
        crest = self.period * (k + 0.5) - self.phase
        if t0 <= crest <= t1:
            return self.peak_rate
        return max(self.rate(t0), self.rate(t1))


@dataclass(frozen=True)
class FlashCrowdTrace(LoadTrace):
    """A flash crowd: baseline load with one trapezoidal spike on top.

    The rate ramps linearly from ``base_rate`` to ``spike_rate`` over
    ``ramp`` seconds starting at ``spike_start``, holds for
    ``spike_duration``, then ramps back down — the news-event burst that
    static provisioning must carry permanently but an autoscaler only
    pays for while it lasts.
    """

    base_rate: float
    spike_rate: float
    spike_start: float
    spike_duration: float
    ramp: float = 10.0

    def __post_init__(self) -> None:
        _require_rate(self.base_rate, "base_rate")
        if self.base_rate <= 0.0:
            raise ConfigurationError("base_rate must be positive")
        if self.spike_rate < self.base_rate:
            raise ConfigurationError("spike_rate must be >= base_rate")
        if self.spike_start < 0.0:
            raise ConfigurationError("spike_start must be >= 0")
        if self.spike_duration <= 0.0:
            raise ConfigurationError("spike_duration must be positive")
        if self.ramp < 0.0:
            raise ConfigurationError("ramp must be >= 0")

    def rate(self, t: float) -> float:
        up0 = self.spike_start
        up1 = up0 + self.ramp
        down0 = up1 + self.spike_duration
        down1 = down0 + self.ramp
        if t <= up0 or t >= down1:
            return self.base_rate
        if t < up1:
            frac = (t - up0) / self.ramp if self.ramp > 0 else 1.0
        elif t <= down0:
            frac = 1.0
        else:
            frac = (down1 - t) / self.ramp if self.ramp > 0 else 1.0
        return self.base_rate + (self.spike_rate - self.base_rate) * frac

    @property
    def max_rate(self) -> float:
        return self.spike_rate

    @property
    def label(self) -> str:
        return "flash-crowd"

    def peak_between(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ConfigurationError(f"empty forecast window [{t0}, {t1}]")
        # Piecewise linear: the max is at a breakpoint or an endpoint.
        breaks = (
            self.spike_start,
            self.spike_start + self.ramp,
            self.spike_start + self.ramp + self.spike_duration,
            self.spike_start + 2 * self.ramp + self.spike_duration,
        )
        candidates = [t0, t1] + [b for b in breaks if t0 <= b <= t1]
        return max(self.rate(t) for t in candidates)


@lru_cache(maxsize=4096)
def _modulated_level(rates: Tuple[float, ...], seed: int, epoch: int) -> float:
    """The (deterministic) rate level of one dwell epoch."""
    rng = rng_util.spawn(seed, "modulated-trace", epoch)
    return rates[int(rng.integers(0, len(rates)))]


@dataclass(frozen=True)
class ModulatedTrace(LoadTrace):
    """Markov-modulated Poisson bursts: the rate jumps between levels.

    Every ``dwell`` seconds the offered rate switches to one of ``rates``,
    chosen uniformly by a stream derived from ``seed`` — a doubly
    stochastic (MMPP-style) arrival process whose burstiness stresses
    reactive controllers, yet is a pure function of ``(seed, t)`` so runs
    stay reproducible and cacheable.
    """

    rates: Tuple[float, ...]
    dwell: float
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.rates) < 2:
            raise ConfigurationError("need at least two rate levels")
        for r in self.rates:
            _require_rate(r, "rate level")
        if max(self.rates) <= 0.0:
            raise ConfigurationError("at least one rate level must be positive")
        if self.dwell <= 0.0:
            raise ConfigurationError("dwell must be positive")

    def rate(self, t: float) -> float:
        epoch = int(t // self.dwell) if t >= 0 else 0
        return _modulated_level(self.rates, self.seed, epoch)

    @property
    def max_rate(self) -> float:
        return max(self.rates)

    @property
    def label(self) -> str:
        return "modulated"

    def peak_between(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ConfigurationError(f"empty forecast window [{t0}, {t1}]")
        first = int(max(0.0, t0) // self.dwell)
        last = int(max(0.0, t1) // self.dwell)
        return max(
            _modulated_level(self.rates, self.seed, epoch)
            for epoch in range(first, last + 1)
        )


@dataclass(frozen=True)
class PiecewiseTrace(LoadTrace):
    """A trace interpolated linearly through ``(time, rate)`` points.

    The workhorse for replaying *measured* data-center traces: build one
    with :meth:`from_file` from a two-column text file.  Before the first
    point the first rate holds; after the last point the last rate holds,
    unless ``period`` wraps time around for a cyclic replay.
    """

    points: Tuple[Tuple[float, float], ...]
    period: float = 0.0  # 0 disables cyclic replay

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError("need at least one (time, rate) point")
        times = [t for t, _ in self.points]
        if times != sorted(times) or len(set(times)) != len(times):
            raise ConfigurationError("trace times must be strictly increasing")
        for _, r in self.points:
            _require_rate(r, "rate")
        if max(r for _, r in self.points) <= 0.0:
            raise ConfigurationError("at least one rate must be positive")
        if self.period < 0.0:
            raise ConfigurationError("period must be >= 0")
        if self.period and self.points[-1][0] > self.period:
            raise ConfigurationError("trace points extend past the period")
        # Derived lookup index, not a field: repr/equality/cache keys see
        # only the points.  rate() sits in the arrival hot path, and a
        # replayed production trace can hold thousands of points.
        object.__setattr__(self, "_times", tuple(times))

    @classmethod
    def from_file(cls, path: str, period: float = 0.0) -> "PiecewiseTrace":
        """Parse ``time rate`` (or ``time,rate``) lines; ``#`` comments ok."""
        points = []
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                parts = text.replace(",", " ").split()
                if len(parts) != 2:
                    raise ConfigurationError(
                        f"{path}:{lineno}: expected 'time rate', got {line!r}"
                    )
                points.append((float(parts[0]), float(parts[1])))
        return cls(points=tuple(points), period=period)

    def rate(self, t: float) -> float:
        if self.period:
            t = t % self.period
        points = self.points
        if t <= points[0][0]:
            return points[0][1]
        if t >= points[-1][0]:
            if not self.period:
                return points[-1][1]
            # Cyclic: interpolate across the wrap back to the first point.
            t0, r0 = points[-1]
            t1, r1 = points[0][0] + self.period, points[0][1]
            if t1 == t0:
                return r0
            return r0 + (r1 - r0) * (t - t0) / (t1 - t0)
        # Strictly inside the point range: binary-search the segment
        # (times are validated strictly increasing).
        index = bisect_right(self._times, t)
        t0, r0 = points[index - 1]
        t1, r1 = points[index]
        return r0 + (r1 - r0) * (t - t0) / (t1 - t0)

    @property
    def max_rate(self) -> float:
        return max(r for _, r in self.points)

    @property
    def label(self) -> str:
        return "piecewise"

    def peak_between(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ConfigurationError(f"empty forecast window [{t0}, {t1}]")
        if self.period and t1 - t0 >= self.period:
            return self.max_rate
        candidates = [self.rate(t0), self.rate(t1)]
        for bt, br in self.points:
            if self.period:
                # The breakpoint recurs every period; check the occurrences
                # that can fall inside the window.
                k = math.floor((t0 - bt) / self.period)
                for occurrence in (bt + k * self.period,
                                   bt + (k + 1) * self.period,
                                   bt + (k + 2) * self.period):
                    if t0 <= occurrence <= t1:
                        candidates.append(br)
                        break
            elif t0 <= bt <= t1:
                candidates.append(br)
        return max(candidates)
