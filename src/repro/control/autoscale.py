"""The AutoscaleRun harness: play a load trace against an elastic pillar.

:func:`autoscale_sim` and :func:`autoscale_cluster` are the closed control
loop the paper's dynamic-provisioning use case implies but never builds:
an open-loop trace offers time-varying load, a
:class:`~repro.control.controller.Controller` decides the replica count at
every control tick, and the execution pillar — the DES simulator or the
live cluster runtime — actually grows and shrinks through its
``add_replica``/``remove_replica`` membership operations (join cost as a
bulk writeset replay, drain before removal).

Both harnesses record the same :class:`AutoscaleResult`: the full timeline
(offered load, member count, p95 latency, SLO violations per interval)
plus the run totals that policy comparisons need — replica-seconds
provisioned (what the deployment pays for) and the SLO-violation fraction
over the whole measurement window.  The simulator harness is exactly
deterministic for a fixed seed; the cluster harness additionally reports
the replication-correctness evidence (convergence + final versions), so
membership churn is checked to never lose or duplicate a committed
writeset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError, ReproError
from ..core.params import ReplicationConfig, StandaloneProfile
from ..core.rng import DEFAULT_SEED
from ..ops.events import OpsEvent
from ..ops.health import HealthMonitor
from ..ops.plan import OpsPlan
from ..ops.rolling import rolling_restart_cluster, rolling_restart_sim
from ..simulator.des import Environment, Timeout
from ..simulator.faults import install_faults, validate_faults
from ..simulator.runner import MULTI_MASTER, SINGLE_MASTER
from ..simulator.sampling import DISTRIBUTIONS, EXPONENTIAL
from ..simulator.stats import MetricsCollector
from ..simulator.systems import (
    LB_POLICIES,
    LEAST_LOADED,
    MultiMasterSystem,
    SingleMasterSystem,
)
from ..telemetry import Telemetry, active_config, render_events
from ..workloads.spec import WorkloadSpec
from .controller import ControlObservation, make_controller
from .estimator import (
    ESTIMATED,
    ModelDriftMonitor,
    PerfMonitor,
    resolve_capacity_source,
)
from .slo import BurnRate, SLOMonitor, max_burn
from .trace import LoadTrace

#: Designs that support elastic membership (standalone has nothing to grow).
ELASTIC_DESIGNS = (MULTI_MASTER, SINGLE_MASTER)

_SIM_SYSTEMS = {
    MULTI_MASTER: MultiMasterSystem,
    SINGLE_MASTER: SingleMasterSystem,
}


@dataclass(frozen=True)
class TimelinePoint:
    """One control interval of an autoscale run."""

    #: End of the interval (virtual seconds from run start).
    time: float
    #: Offered trace rate at the tick (tps).
    offered_rate: float
    #: Serving members after the tick's decision was applied.
    members: int
    #: Replicas attached in any state (joining/draining included).
    attached: int
    #: Commits, throughput, and latency over the interval.
    commits: int
    throughput: float
    mean_response: float
    p95_response: float
    #: Commits whose response exceeded the SLO, this interval.
    slo_violations: int
    #: Busiest resource utilization over the interval.
    max_utilization: float
    #: Multi-window error-budget burn rates at this tick (empty on
    #: points recorded before the SLO monitor existed).
    slo_burn: Tuple[BurnRate, ...] = ()


@dataclass(frozen=True)
class AutoscaleResult:
    """Everything measured during one autoscale run."""

    design: str
    policy: str
    pillar: str
    trace: str
    slo_response: float
    control_interval: float
    #: Measurement window length (virtual seconds).
    window: float
    #: Commits inside the window, and how many violated the SLO.
    committed: int
    slo_violations: int
    #: Integral of the attached replica count over the window
    #: (replica-seconds — the provisioning cost).
    replica_seconds: float
    timeline: Tuple[TimelinePoint, ...]
    #: Serving members when the run ended.
    final_members: int
    #: add_replica + remove_replica invocations over the whole run.
    scale_events: int
    seed: int = DEFAULT_SEED
    #: Replication correctness: every (non-draining) replica converged to
    #: the certifier's latest version after the drain/quiesce phase.
    converged: bool = True
    final_versions: Tuple[int, ...] = ()
    #: Mean update-abort fraction over the window (diagnostics).
    abort_rate: float = 0.0
    #: Operations log (crashes, replacements, rolling cycles) when an
    #: :class:`~repro.ops.plan.OpsPlan` was attached, sorted by time.
    ops_events: Tuple[OpsEvent, ...] = ()
    #: Capacity multipliers of the initial fleet (uniform when empty).
    capacities: Tuple[float, ...] = ()
    #: :class:`repro.telemetry.TelemetryResult` when the run was
    #: telemetry-enabled; ``None`` otherwise (the default keeps results
    #: from older cached runs loading unchanged).
    telemetry: object = None
    #: :class:`repro.telemetry.perf.PerfReport` when the run engaged the
    #: online capacity estimator (telemetry on, or
    #: ``capacity_source="estimated"``); ``None`` otherwise.
    perf: object = None

    @property
    def slo_violation_fraction(self) -> float:
        """Fraction of window commits that violated the SLO."""
        if self.committed == 0:
            return 0.0
        return self.slo_violations / self.committed

    @property
    def mean_members(self) -> float:
        """Time-averaged attached replica count over the window."""
        if self.window <= 0:
            return 0.0
        return self.replica_seconds / self.window

    @property
    def replica_hours(self) -> float:
        """Replica-seconds expressed in replica-hours."""
        return self.replica_seconds / 3600.0

    def savings_vs(self, baseline: "AutoscaleResult") -> float:
        """Fraction of replica-seconds saved against *baseline*."""
        if baseline.replica_seconds <= 0:
            return 0.0
        return 1.0 - self.replica_seconds / baseline.replica_seconds

    def to_text(self) -> str:
        """Render the run summary."""
        return (
            f"autoscale {self.policy} on {self.design} ({self.pillar}, "
            f"{self.trace} trace): mean {self.mean_members:.2f} replicas, "
            f"{self.replica_seconds:.0f} replica-s, {self.committed} commits, "
            f"{self.slo_violation_fraction:.2%} SLO violations "
            f"(SLO {self.slo_response * 1000:.0f} ms), "
            f"{self.scale_events} scale events"
        )


@dataclass(frozen=True)
class AutoscaleComparison:
    """Policy comparison on one trace: the scenario artifact."""

    workload: str
    trace: str
    pillar: str
    slo_response: float
    results: Tuple[AutoscaleResult, ...]

    def result_for(self, design: str, policy: str) -> Optional[AutoscaleResult]:
        """Look up one run of the grid."""
        for result in self.results:
            if result.design == design and result.policy == policy:
                return result
        return None

    def to_text(self) -> str:
        """Render the per-design policy table."""
        lines = [
            f"autoscale policy comparison — {self.workload}, {self.trace} "
            f"trace, {self.pillar} pillar, SLO "
            f"{self.slo_response * 1000:.0f} ms"
        ]
        lines.append(
            f"  {'design':<14s} {'policy':<12s} {'mean N':>7s} "
            f"{'replica-s':>10s} {'SLO viol':>9s} {'vs static':>10s}"
        )
        designs = []
        for result in self.results:
            if result.design not in designs:
                designs.append(result.design)
        for design in designs:
            static = self.result_for(design, "static-peak")
            for result in self.results:
                if result.design != design:
                    continue
                if static is not None and result is not static:
                    saved = f"{result.savings_vs(static):+8.1%}"
                else:
                    saved = f"{'—':>8s}"
                lines.append(
                    f"  {design:<14s} {result.policy:<12s} "
                    f"{result.mean_members:>7.2f} "
                    f"{result.replica_seconds:>10.0f} "
                    f"{result.slo_violation_fraction:>9.2%} {saved:>10s}"
                )
        return "\n".join(lines)


def render_timeline(result: AutoscaleResult, width: int = 24) -> str:
    """ASCII plot of one run: offered load and member count over time."""
    lines = [result.to_text()]
    if not result.timeline:
        return lines[0]
    peak = max(p.offered_rate for p in result.timeline) or 1.0
    top = max(max(p.attached for p in result.timeline), 1)
    lines.append(
        f"  {'t(s)':>7s} {'load(tps)':>10s} {'load':<{width}s} "
        f"{'N':>3s} {'members':<{top}s} {'p95(ms)':>8s} {'viol':>5s} "
        f"{'burn':>6s}"
    )
    for p in result.timeline:
        bar = "#" * max(1, round(width * p.offered_rate / peak))
        members = "#" * p.members + (
            "+" * max(0, p.attached - p.members))
        burn = max_burn(getattr(p, "slo_burn", ()))
        lines.append(
            f"  {p.time:>7.1f} {p.offered_rate:>10.1f} {bar:<{width}s} "
            f"{p.members:>3d} {members:<{top}s} "
            f"{p.p95_response * 1000:>8.0f} {p.slo_violations:>5d} "
            f"{burn:>6.2f}"
        )
    if result.ops_events:
        lines.append("  ops events:")
        lines.extend(render_events(result.ops_events))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared interval statistics
# ----------------------------------------------------------------------

class _SampledMetrics(MetricsCollector):
    """MetricsCollector that also keeps every (time, response) sample.

    The control loop needs per-interval latency percentiles and the SLO
    accounting needs exact per-commit decisions, neither of which the
    aggregate collector retains.  Samples are recorded from the first
    transaction (controllers act during warm-up too); the harness slices
    the measurement window out at the end.
    """

    def __init__(self) -> None:
        super().__init__()
        self.samples: List[Tuple[float, float]] = []
        #: Retry count of each sampled commit, index-aligned with
        #: ``samples`` (the burn monitor's abort signal).
        self.abort_counts: List[int] = []

    def record_commit(self, is_update, response_time, aborts, now=None):
        super().record_commit(is_update, response_time, aborts, now=now)
        if now is not None:
            self.samples.append((now, response_time))
            self.abort_counts.append(aborts)


def _p95(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, int(round(0.95 * len(ordered))) - 1)
    return ordered[index]


def _interval_stats(chunk: Sequence[Tuple[float, float]], interval: float,
                    slo: float) -> Tuple[int, float, float, float, int]:
    """(commits, throughput, mean, p95, violations) of one interval."""
    if not chunk:
        return 0, 0.0, 0.0, 0.0, 0
    responses = [rt for _, rt in chunk]
    commits = len(responses)
    mean = sum(responses) / commits
    violations = sum(1 for rt in responses if rt > slo)
    throughput = commits / interval if interval > 0 else 0.0
    return commits, throughput, mean, _p95(responses), violations


def _busy_snapshot(replicas) -> Dict[str, float]:
    return {
        resource.name: resource.busy_time_now()
        for replica in replicas
        for resource in (replica.cpu, replica.disk)
    }


def _max_utilization(previous: Dict[str, float], current: Dict[str, float],
                     interval: float) -> float:
    if interval <= 0:
        return 0.0
    busiest = 0.0
    for name, busy in current.items():
        busiest = max(busiest, (busy - previous.get(name, 0.0)) / interval)
    return busiest


def _window_slo(samples: Sequence[Tuple[float, float]], start: float,
                end: float, slo: float) -> Tuple[int, int]:
    """Exact (commits, violations) over the measurement window."""
    commits = violations = 0
    for now, rt in samples:
        if start <= now <= end:
            commits += 1
            if rt > slo:
                violations += 1
    return commits, violations


def _reconcile_membership(member_count, add, remove,
                          target: int, state: _ControlState) -> None:
    """Issue add/remove operations until membership matches *target*.

    The one reconciliation loop both pillars use: *member_count* /
    *add* / *remove* are bound to the system's or cluster's elastic
    operations.  A membership operation that cannot proceed right now —
    a join whose donor is too stale for the retained channel history, a
    remove with nothing removable, a live drain that timed out and
    rolled back — ends this tick's reconciliation; the controller
    simply re-decides next interval.  Genuine cluster damage still
    surfaces through the end-of-run convergence and applier checks.
    """
    while member_count() < target:
        try:
            add()
        except ReproError:
            return
        state.scale_events += 1
    while member_count() > target:
        try:
            remove()
        except ReproError:
            return
        state.scale_events += 1


def _control_tick(
    state: _ControlState,
    now: float,
    chunk: Sequence[Tuple[float, float]],
    trace: LoadTrace,
    controller,
    replicas,
    member_count,
    add,
    remove,
    min_replicas: int,
    max_replicas: int,
    control_interval: float,
    slo_response: float,
    window_start: float,
    window_end: float,
    reconcile: bool = True,
    telemetry=None,
    slo_monitor: Optional[SLOMonitor] = None,
    interval_aborts: int = 0,
    perf: Optional[PerfMonitor] = None,
) -> None:
    """One control interval, identical for both pillars.

    *replicas* and *member_count* are callables (the cluster replaces
    its replica list copy-on-write, so a captured reference would go
    stale); *chunk* is the interval's (time, response) samples, sliced
    by the caller under its own locking discipline.  With
    ``reconcile=False`` the controller only observes — an attached
    operations plan is the membership authority, so replacements and
    rolling cycles never race autoscale joins.  *perf*, when attached,
    observes the fleet each tick and (in estimated-capacity mode)
    re-weights the LB and inflates the controller's target by the fleet
    health factor.
    """
    commits, tput, mean, p95, violations = _interval_stats(
        chunk, control_interval, slo_response
    )
    busy = _busy_snapshot(replicas())
    utilization = _max_utilization(state.busy, busy, control_interval)
    state.busy = busy
    burns: Tuple[BurnRate, ...] = ()
    if slo_monitor is not None:
        burns = slo_monitor.observe(now, commits, violations,
                                    interval_aborts)
    observation = ControlObservation(
        now=now,
        members=member_count(),
        attached=len(replicas()),
        offered_rate=trace.rate(now),
        commits=commits,
        throughput=tput,
        mean_response=mean,
        p95_response=p95,
        max_utilization=utilization,
        slo_burn=burns,
    )
    if perf is not None:
        perf.on_tick(
            now, replicas(),
            members=observation.members,
            offered_rate=observation.offered_rate,
            throughput=tput,
            p95=p95,
        )
    target = max(min_replicas,
                 min(max_replicas, controller.target(observation)))
    if perf is not None:
        target = max(min_replicas,
                     min(max_replicas, perf.adjust_target(target)))
    if telemetry is not None:
        if target > observation.members:
            action = "scale-up"
        elif target < observation.members:
            action = "scale-down"
        else:
            action = "hold"
        telemetry.count_decision(action, target)
        for burn in burns:
            telemetry.observe_slo_burn(burn.window, burn.signal, burn.burn)
    if reconcile:
        _reconcile_membership(member_count, add, remove, target, state)
    state.integrate(now, len(replicas()), window_start, window_end)
    if window_start < now <= window_end + 1e-9:
        state.timeline.append(TimelinePoint(
            time=now,
            offered_rate=observation.offered_rate,
            members=member_count(),
            attached=len(replicas()),
            commits=commits,
            throughput=tput,
            mean_response=mean,
            p95_response=p95,
            slo_violations=violations,
            max_utilization=utilization,
            slo_burn=burns,
        ))


@dataclass
class _ControlState:
    """Mutable bookkeeping shared between the loop and the harness."""

    running: bool = True
    sample_index: int = 0
    last_time: float = 0.0
    last_attached: int = 0
    replica_seconds: float = 0.0
    scale_events: int = 0
    busy: Dict[str, float] = field(default_factory=dict)
    timeline: List[TimelinePoint] = field(default_factory=list)
    #: Operations event log (fault recorder, monitor, rolling process).
    events: List[OpsEvent] = field(default_factory=list)

    def integrate(self, now: float, attached: int, start: float,
                  end: float) -> None:
        """Accumulate attached-count seconds clipped to the window."""
        lo = max(self.last_time, start)
        hi = min(now, end)
        if hi > lo:
            self.replica_seconds += self.last_attached * (hi - lo)
        self.last_time = now
        self.last_attached = attached


def _validate(design: str, trace: LoadTrace, distribution: str,
              lb_policy: str, warmup: float, duration: float,
              control_interval: float, slo_response: float) -> None:
    if design not in ELASTIC_DESIGNS:
        raise ConfigurationError(
            f"design {design!r} is not elastic; one of {ELASTIC_DESIGNS}"
        )
    if trace.max_rate <= 0:
        raise ConfigurationError("trace peak rate must be positive")
    if distribution not in DISTRIBUTIONS:
        raise ConfigurationError(f"unknown distribution {distribution!r}")
    if lb_policy not in LB_POLICIES:
        raise ConfigurationError(f"unknown lb_policy {lb_policy!r}")
    if warmup < 0 or duration <= 0:
        raise ConfigurationError("warmup must be >= 0 and duration > 0")
    if control_interval <= 0:
        raise ConfigurationError("control_interval must be positive")
    if slo_response <= 0:
        raise ConfigurationError("slo_response must be positive")


# ----------------------------------------------------------------------
# Simulator pillar
# ----------------------------------------------------------------------

def autoscale_sim(
    spec: WorkloadSpec,
    trace: LoadTrace,
    policy,
    design: str = MULTI_MASTER,
    *,
    profile: Optional[StandaloneProfile] = None,
    seed: int = DEFAULT_SEED,
    warmup: float = 20.0,
    duration: float = 240.0,
    control_interval: float = 10.0,
    slo_response: float = 1.0,
    min_replicas: int = 1,
    max_replicas: int = 16,
    transfer_writesets: int = 16,
    distribution: str = EXPONENTIAL,
    lb_policy: str = LEAST_LOADED,
    config: Optional[ReplicationConfig] = None,
    drain_after: float = 15.0,
    compact_min: Optional[int] = None,
    ops: Optional[OpsPlan] = None,
    capacities: Optional[Tuple[float, ...]] = None,
    telemetry=None,
    capacity_source=None,
) -> AutoscaleResult:
    """Run one autoscaling policy on the DES simulator.

    Deterministic for a fixed *seed*: the arrival stream is sampled by
    thinning against the trace's peak rate (membership changes never
    perturb it), controller decisions are pure functions of simulated
    metrics, and membership operations are event-loop callbacks.
    ``compact_min`` tunes the event-heap tombstone-compaction threshold —
    elastic runs cancel far more events than fixed sweeps.

    *ops* attaches an operations plan (fault injection, self-healing
    replacement, rolling restart); while attached, the operations layer
    is the only membership authority — the controller observes but does
    not reconcile.  *capacities* builds a heterogeneous initial fleet
    (one multiplier per initial replica).  *telemetry* opts into the
    observability layer (see :func:`repro.simulator.runner.simulate`);
    controller decisions and the operations event log land on the
    recorder alongside the transaction-level metrics.

    *capacity_source* selects what the capacity-weighted LB and the
    controller's sizing trust: ``"declared"`` (or ``None``) keeps the
    configured multipliers; ``"estimated"`` makes both consume the
    online estimator's live per-replica estimates — the path that
    recovers throughput when a replica silently browns out.  The
    estimator also engages (observe-only) on any telemetry-enabled run.
    """
    _validate(design, trace, distribution, lb_policy, warmup, duration,
              control_interval, slo_response)
    capacity_mode = resolve_capacity_source(capacity_source)

    controller = make_controller(
        policy, design=design, trace=trace, slo_response=slo_response,
        config=config or spec.replication_config(1), profile=profile,
        min_replicas=min_replicas, max_replicas=max_replicas,
    )
    initial = max(min_replicas, min(max_replicas, controller.initial_target()))
    base_config = config or spec.replication_config(1)
    run_config = base_config.with_replicas(initial)

    env = Environment(compact_min=compact_min)
    metrics = _SampledMetrics()
    system = _SIM_SYSTEMS[design](
        env, spec, run_config, seed, metrics,
        distribution=distribution, lb_policy=lb_policy,
        capacities=capacities,
    )
    telemetry_config = active_config(telemetry)
    recorder = None
    if telemetry_config is not None:
        recorder = Telemetry(telemetry_config, pillar="simulator")
        system.attach_telemetry(recorder)

        def telemetry_sampler():
            while True:
                yield Timeout(recorder.config.snapshot_interval)
                recorder.sample_fleet(
                    env.now, system.replicas,
                    getattr(system, "certifier", None),
                )

        env.start(telemetry_sampler())
    system.start_trace_arrivals(trace)

    window_start = warmup
    window_end = warmup + duration
    state = _ControlState(last_attached=len(system.replicas),
                          busy=_busy_snapshot(system.replicas))
    perf = _make_perf_monitor(
        capacity_mode, recorder, control_interval, "simulator",
        design=design, profile=profile, base_config=base_config,
        state=state,
    )

    monitor: Optional[HealthMonitor] = None
    # A brownout-only plan injects faults but never changes membership,
    # so the controller keeps reconciling (that is how estimated-capacity
    # mode scales out around a browned-out replica).
    manage_membership = ops is None or not ops.manages_membership
    if ops is not None and ops.active:
        install_faults(
            env, system,
            validate_faults(ops.faults, len(system.replicas), design),
            recorder=lambda t, kind, name: state.events.append(
                OpsEvent(t, kind, name)
            ),
        )
        if ops.self_heal:
            monitor = HealthMonitor(
                replicas=lambda: system.replicas,
                remove=lambda r: system.remove_replica(replica=r, force=True),
                add=lambda cap: system.add_replica(
                    ops.transfer_writesets, capacity=cap
                ),
                events=state.events,
            )
            if ops.detect_interval is not None:
                # Detection decoupled from the control interval: the
                # monitor ticks on its own (usually faster) timer, so
                # detection latency is bounded by detect_interval and
                # the MTTR breakdown separates it from repair time.
                def detect_loop(interval=ops.detect_interval):
                    while state.running:
                        yield Timeout(interval)
                        if not state.running:
                            return
                        monitor.tick(env.now)
                env.start(detect_loop())
        if ops.rolling_start is not None:
            def rolling_process():
                yield Timeout(ops.rolling_start)
                yield from rolling_restart_sim(
                    env, system, state.events,
                    transfer_writesets=ops.transfer_writesets,
                    settle=ops.rolling_settle,
                )
            env.start(rolling_process())

    slo_monitor = SLOMonitor()

    def control_loop():
        while state.running:
            yield Timeout(control_interval)
            if not state.running:
                return
            end = len(metrics.samples)
            chunk = metrics.samples[state.sample_index:end]
            aborts = sum(metrics.abort_counts[state.sample_index:end])
            state.sample_index = end
            _control_tick(
                state, env.now, chunk, trace, controller,
                replicas=lambda: system.replicas,
                member_count=lambda: system.member_count,
                add=lambda: system.add_replica(transfer_writesets),
                remove=system.remove_replica,
                min_replicas=min_replicas, max_replicas=max_replicas,
                control_interval=control_interval,
                slo_response=slo_response,
                window_start=window_start, window_end=window_end,
                reconcile=manage_membership,
                telemetry=recorder,
                slo_monitor=slo_monitor,
                interval_aborts=aborts,
                perf=perf,
            )
            if monitor is not None and ops.detect_interval is None:
                monitor.tick(env.now)

    env.start(control_loop())
    env.schedule(window_start, metrics.begin_window, window_start)
    env.run_until(window_end)
    metrics.end_window(env.now)
    state.running = False
    state.integrate(env.now, len(system.replicas), window_start, window_end)

    # Drain: stop arrivals and let joins, drains, and in-flight
    # transactions finish so the convergence check is meaningful.
    system.stop_arrivals()
    env.run_until(window_end + drain_after)

    survivors = [
        r for r in system.replicas if not r.draining and not r.failed
    ]
    latest = system.certifier.latest_version
    final_versions = tuple(r.applied_version for r in survivors)
    converged = all(v == latest for v in final_versions)

    committed, violations = _window_slo(
        metrics.samples, window_start, window_end, slo_response
    )
    telemetry_result = None
    if recorder is not None:
        recorder.sample_fleet(env.now, system.replicas,
                              getattr(system, "certifier", None))
        recorder.ingest_events(state.events)
        telemetry_result = recorder.result()
    return AutoscaleResult(
        design=design,
        policy=controller.name,
        pillar="simulator",
        trace=trace.label,
        slo_response=slo_response,
        control_interval=control_interval,
        window=duration,
        committed=committed,
        slo_violations=violations,
        replica_seconds=state.replica_seconds,
        timeline=tuple(state.timeline),
        final_members=system.member_count,
        scale_events=state.scale_events,
        seed=seed,
        converged=converged,
        final_versions=final_versions,
        abort_rate=metrics.abort_rate(),
        ops_events=tuple(sorted(state.events, key=lambda e: e.time)),
        capacities=tuple(capacities) if capacities else (),
        telemetry=telemetry_result,
        perf=perf.report() if perf is not None else None,
    )


def _make_perf_monitor(
    capacity_mode, recorder, control_interval: float, pillar: str,
    *, design: str, profile, base_config, state: _ControlState,
) -> Optional[PerfMonitor]:
    """Build the performance observer both harnesses share.

    Engaged when the run consumes estimated capacities or is telemetry-
    enabled; ``None`` otherwise — the pre-estimator instruction stream,
    byte for byte.  Gray-detect events reach the ops event log only in
    estimated mode (pure observation must not change result contents
    beyond the attached reports); the model-drift monitor needs a
    standalone profile to predict from.
    """
    if capacity_mode != ESTIMATED and recorder is None:
        return None
    drift = None
    if profile is not None:
        drift = ModelDriftMonitor(design, profile, base_config)
    event_sink = None
    if capacity_mode == ESTIMATED:
        def event_sink(t, kind, name):
            state.events.append(OpsEvent(t, kind, name))
    return PerfMonitor(
        interval=control_interval,
        pillar=pillar,
        apply=capacity_mode == ESTIMATED,
        drift=drift,
        telemetry=recorder,
        event_sink=event_sink,
    )


# ----------------------------------------------------------------------
# Live-cluster pillar
# ----------------------------------------------------------------------

def autoscale_cluster(
    spec: WorkloadSpec,
    trace: LoadTrace,
    policy,
    design: str = MULTI_MASTER,
    *,
    profile: Optional[StandaloneProfile] = None,
    seed: int = DEFAULT_SEED,
    warmup: float = 2.0,
    duration: float = 16.0,
    control_interval: float = 1.0,
    slo_response: float = 1.0,
    time_scale: float = 0.25,
    min_replicas: int = 1,
    max_replicas: int = 8,
    transfer_writesets: int = 16,
    distribution: str = EXPONENTIAL,
    lb_policy: str = LEAST_LOADED,
    config: Optional[ReplicationConfig] = None,
    quiesce_timeout: float = 30.0,
    drain_timeout: float = 30.0,
    ops: Optional[OpsPlan] = None,
    capacities: Optional[Tuple[float, ...]] = None,
    telemetry=None,
    capacity_source=None,
) -> AutoscaleResult:
    """Run one autoscaling policy on the live cluster runtime.

    The same control loop as :func:`autoscale_sim`, but everything is
    real: the trace source spawns transaction threads, the controller
    thread resizes the cluster through its elastic membership operations
    (state transfer under the commit-order lock; drain before removal),
    and after the run the cluster quiesces so the result carries the
    replication-correctness evidence — no committed writeset may be lost
    or duplicated by membership churn.  *ops* and *capacities* mirror
    :func:`autoscale_sim`: an attached operations plan (crash faults,
    self-healing replacement, rolling restart) becomes the membership
    authority, and capacities build a heterogeneous initial fleet.
    *capacity_source* mirrors :func:`autoscale_sim`: ``"estimated"``
    routes and sizes on the online estimator's live capacities.
    """
    from ..cluster.clock import VirtualClock
    from ..cluster.runner import (
        _CLUSTER_CLASSES,
        _Drivers,
        _fault_process,
        _open_loop_source,
        _telemetry_sampler,
    )

    _validate(design, trace, distribution, lb_policy, warmup, duration,
              control_interval, slo_response)
    capacity_mode = resolve_capacity_source(capacity_source)

    controller = make_controller(
        policy, design=design, trace=trace, slo_response=slo_response,
        config=config or spec.replication_config(1), profile=profile,
        min_replicas=min_replicas, max_replicas=max_replicas,
    )
    initial = max(min_replicas, min(max_replicas, controller.initial_target()))
    base_config = config or spec.replication_config(1)
    run_config = base_config.with_replicas(initial)

    clock = VirtualClock(time_scale)
    metrics = _SampledMetrics()
    cluster = _CLUSTER_CLASSES[design](
        spec, run_config, seed, clock, metrics,
        distribution=distribution, lb_policy=lb_policy,
        capacities=capacities,
    )
    telemetry_config = active_config(telemetry)
    tel_recorder = None
    if telemetry_config is not None:
        tel_recorder = Telemetry(telemetry_config, pillar="cluster")
        cluster.attach_telemetry(tel_recorder)
    cluster.start()

    window_start = warmup
    window_end = warmup + duration
    state = _ControlState(last_attached=len(cluster.replicas),
                          busy=_busy_snapshot(cluster.replicas))
    perf = _make_perf_monitor(
        capacity_mode, tel_recorder, control_interval, "cluster",
        design=design, profile=profile, base_config=base_config,
        state=state,
    )
    drivers = _Drivers()
    if tel_recorder is not None:
        drivers.launch(
            lambda: drivers.guard(
                lambda: _telemetry_sampler(cluster, tel_recorder, drivers)
            ),
            name="telemetry-sampler",
        )

    monitor: Optional[HealthMonitor] = None
    # Brownout-only plans never change membership (see autoscale_sim).
    manage_membership = ops is None or not ops.manages_membership
    if ops is not None and ops.active:
        # list.append is atomic under the GIL; events are only *read*
        # after every driver thread has joined.
        def recorder(t, kind, name):
            state.events.append(OpsEvent(t, kind, name))
        for fault in validate_faults(
            ops.faults, len(cluster.replicas), design
        ):
            drivers.launch(
                lambda f=fault: _fault_process(
                    cluster, f, drivers, recorder=recorder
                ),
                name=f"fault-replica{fault.replica_index}",
            )
        if ops.self_heal:
            monitor = HealthMonitor(
                replicas=lambda: cluster.replicas,
                remove=lambda r: cluster.remove_replica(replica=r, force=True),
                add=lambda cap: cluster.add_replica(
                    ops.transfer_writesets, capacity=cap
                ),
                events=state.events,
            )
            if ops.detect_interval is not None:
                # Dedicated detection thread (see autoscale_sim): only
                # this thread ticks the monitor, so its internal state
                # needs no extra locking.
                def detect_worker(interval=ops.detect_interval):
                    while not drivers.stop.wait(clock.to_wall(interval)):
                        monitor.tick(clock.now())
                drivers.launch(lambda: drivers.guard(detect_worker),
                               name="health-detect")
        if ops.rolling_start is not None:
            def rolling_worker():
                if drivers.stop.wait(clock.to_wall(ops.rolling_start)):
                    return
                rolling_restart_cluster(
                    cluster, state.events, drivers.stop,
                    transfer_writesets=ops.transfer_writesets,
                    settle=ops.rolling_settle,
                    drain_timeout=drain_timeout,
                )
            drivers.launch(lambda: drivers.guard(rolling_worker),
                           name="rolling-upgrade")

    def trace_source():
        _open_loop_source(cluster, 0.0, seed, drivers, trace=trace)

    slo_monitor = SLOMonitor()

    def control_thread():
        while not drivers.stop.wait(clock.to_wall(control_interval)):
            now = clock.now()
            with cluster.metrics_lock:
                end = len(metrics.samples)
                chunk = metrics.samples[state.sample_index:end]
                aborts = sum(metrics.abort_counts[state.sample_index:end])
                state.sample_index = end
            _control_tick(
                state, now, chunk, trace, controller,
                replicas=lambda: cluster.replicas,
                member_count=lambda: cluster.member_count,
                add=lambda: cluster.add_replica(transfer_writesets),
                remove=lambda: cluster.remove_replica(drain_timeout),
                min_replicas=min_replicas, max_replicas=max_replicas,
                control_interval=control_interval,
                slo_response=slo_response,
                window_start=window_start, window_end=window_end,
                reconcile=manage_membership,
                telemetry=tel_recorder,
                slo_monitor=slo_monitor,
                interval_aborts=aborts,
                perf=perf,
            )
            if monitor is not None and ops.detect_interval is None:
                monitor.tick(now)

    drivers.launch(lambda: drivers.guard(trace_source), name="trace-source")
    drivers.launch(lambda: drivers.guard(control_thread), name="autoscaler")

    try:
        drivers.stop.wait(clock.to_wall(warmup))
        with cluster.metrics_lock:
            metrics.begin_window(clock.now())
        drivers.stop.wait(clock.to_wall(duration))
        with cluster.metrics_lock:
            metrics.end_window(clock.now())
        still_running = drivers.join(timeout=max(10.0, clock.to_wall(60.0)))
        if drivers.errors:
            raise drivers.errors[0]
        if still_running:
            raise ConfigurationError(
                f"{len(still_running)} traffic thread(s) still running "
                "after the drain timeout; the offered trace exceeds what "
                "the cluster can drain"
            )
        state.integrate(min(clock.now(), window_end),
                        len(cluster.replicas), window_start, window_end)
        converged = cluster.quiesce(timeout=quiesce_timeout)
        if tel_recorder is not None:
            tel_recorder.sample_fleet(
                clock.now(), cluster.replicas, cluster.certifier
            )
        final_versions = cluster.replica_versions()
        dead = cluster.applier_errors()
        if dead:
            name, error = dead[0]
            raise ConfigurationError(
                f"applier thread of {name} died: {error!r}"
            ) from error
    finally:
        drivers.stop.set()
        cluster.shutdown()

    committed, violations = _window_slo(
        metrics.samples, window_start, window_end, slo_response
    )
    telemetry_result = None
    if tel_recorder is not None:
        tel_recorder.ingest_events(state.events)
        telemetry_result = tel_recorder.result()
    return AutoscaleResult(
        design=design,
        policy=controller.name,
        pillar="cluster",
        trace=trace.label,
        slo_response=slo_response,
        control_interval=control_interval,
        window=duration,
        committed=committed,
        slo_violations=violations,
        replica_seconds=state.replica_seconds,
        timeline=tuple(state.timeline),
        final_members=cluster.member_count,
        scale_events=state.scale_events,
        seed=seed,
        converged=converged and len(set(final_versions)) <= 1,
        final_versions=final_versions,
        abort_rate=metrics.abort_rate(),
        ops_events=tuple(sorted(state.events, key=lambda e: e.time)),
        capacities=tuple(capacities) if capacities else (),
        telemetry=telemetry_result,
        perf=perf.report() if perf is not None else None,
    )
